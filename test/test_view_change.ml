(* Unit and property tests for the dual-mode view-change safe-value
   computation (§V-G) — the correctness heart of SBFT.  These construct
   synthetic view-change messages (including Byzantine ones with forged
   or stale certificates) and check the decisions against the paper's
   Lemmas VI.2/VI.3. *)

open Sbft_core
open Sbft_crypto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen prop)

(* f=1, c=0: n=4, σ-threshold 4, τ-threshold 3, π-threshold 2, VC quorum 3. *)
let config = Config.sbft ~f:1 ~c:0
let keys, replica_keys, _clients =
  Keys.setup (Sbft_sim.Rng.create 7L) ~config ~num_clients:1

let req tag : Types.request =
  { client = -1; timestamp = 0; op = "op-" ^ tag; signature = "" }

let reqs_a = [ req "a" ]
let reqs_b = [ req "b" ]

let hash ~seq ~view reqs = Types.block_hash ~seq ~view ~reqs

(* Build real certificates using the actual signing keys. *)
let tau_sig ~seq ~view reqs =
  let h = hash ~seq ~view reqs in
  let shares =
    Array.to_list
      (Array.map (fun (k : Keys.replica_keys) -> Threshold.share_sign k.tau_sk ~msg:h)
         replica_keys)
  in
  Threshold.combine_exn keys.Keys.tau ~msg:h shares

let tau_tau_sig tau =
  let msg = Types.tau2_message tau in
  let shares =
    Array.to_list
      (Array.map (fun (k : Keys.replica_keys) -> Threshold.share_sign k.tau_sk ~msg)
         replica_keys)
  in
  Threshold.combine_exn keys.Keys.tau ~msg shares

let sigma_sig ~seq ~view reqs =
  let h = hash ~seq ~view reqs in
  let shares =
    Array.to_list
      (Array.map (fun (k : Keys.replica_keys) -> Threshold.share_sign k.sigma_sk ~msg:h)
         replica_keys)
  in
  Threshold.combine_exn keys.Keys.sigma ~msg:h shares

let sigma_share ~replica ~seq ~view reqs =
  Threshold.share_sign replica_keys.(replica).Keys.sigma_sk ~msg:(hash ~seq ~view reqs)

let pi_sig ~seq ~digest =
  let msg = Types.pi_message ~seq ~digest in
  let shares =
    Array.to_list
      (Array.map (fun (k : Keys.replica_keys) -> Threshold.share_sign k.pi_sk ~msg)
         replica_keys)
  in
  Threshold.combine_exn keys.Keys.pi ~msg shares

let vc ?(ls = 0) ?(checkpoint = None) ~replica slots : Types.view_change =
  { vc_replica = replica; vc_view = 0; vc_ls = ls; vc_checkpoint = checkpoint;
    vc_slots = slots }

let slot seq slow fast : Types.vc_slot = { slot_seq = seq; slow; fast }

let decide msgs = View_change.compute ~keys ~new_view:1 msgs

let decision_for seq msgs =
  let _, ds = decide msgs in
  List.assoc_opt seq ds

(* ------------------------------------------------------------------ *)

let test_empty_quorum () =
  let msgs = [ vc ~replica:0 []; vc ~replica:1 []; vc ~replica:2 [] ] in
  let ls, ds = decide msgs in
  check_int "ls 0" 0 ls;
  check_int "no decisions" 0 (List.length ds)

let test_slow_commit_decides () =
  let tau = tau_sig ~seq:1 ~view:0 reqs_a in
  let tau_tau = tau_tau_sig tau in
  let cert = Types.Slow_committed { tau; tau_tau; view = 0; reqs = reqs_a } in
  let msgs =
    [ vc ~replica:0 [ slot 1 cert Types.No_preprepare ];
      vc ~replica:1 []; vc ~replica:2 [] ]
  in
  match decision_for 1 msgs with
  | Some (View_change.Decide_slow { reqs; _ }) -> check "reqs a" true (reqs = reqs_a)
  | _ -> Alcotest.fail "expected Decide_slow"

let test_fast_commit_decides () =
  let sigma = sigma_sig ~seq:1 ~view:0 reqs_a in
  let cert = Types.Fast_committed { sigma; view = 0; reqs = reqs_a } in
  let msgs =
    [ vc ~replica:0 [ slot 1 Types.No_commit cert ];
      vc ~replica:1 []; vc ~replica:2 [] ]
  in
  match decision_for 1 msgs with
  | Some (View_change.Decide_fast { reqs; _ }) -> check "reqs a" true (reqs = reqs_a)
  | _ -> Alcotest.fail "expected Decide_fast"

let test_prepared_adopted () =
  let tau = tau_sig ~seq:1 ~view:2 reqs_a in
  let cert = Types.Slow_prepared { tau; view = 2; reqs = reqs_a } in
  let msgs =
    [ vc ~replica:0 [ slot 1 cert Types.No_preprepare ];
      vc ~replica:1 []; vc ~replica:2 [] ]
  in
  check "adopt prepared" true (decision_for 1 msgs = Some (View_change.Adopt reqs_a))

let test_highest_prepare_wins () =
  let tau1 = tau_sig ~seq:1 ~view:1 reqs_a in
  let tau2 = tau_sig ~seq:1 ~view:3 reqs_b in
  let msgs =
    [
      vc ~replica:0
        [ slot 1 (Types.Slow_prepared { tau = tau1; view = 1; reqs = reqs_a }) Types.No_preprepare ];
      vc ~replica:1
        [ slot 1 (Types.Slow_prepared { tau = tau2; view = 3; reqs = reqs_b }) Types.No_preprepare ];
      vc ~replica:2 [];
    ]
  in
  check "higher view wins" true (decision_for 1 msgs = Some (View_change.Adopt reqs_b))

let test_fast_value_adopted () =
  (* f+c+1 = 2 pre-prepare shares for the same value at view >= 1. *)
  let make r v =
    Types.Fast_preprepared { share = sigma_share ~replica:r ~seq:1 ~view:v reqs_a; view = v; reqs = reqs_a }
  in
  let msgs =
    [
      vc ~replica:0 [ slot 1 Types.No_commit (make 0 1) ];
      vc ~replica:1 [ slot 1 Types.No_commit (make 1 2) ];
      vc ~replica:2 [];
    ]
  in
  check "adopt fast value" true (decision_for 1 msgs = Some (View_change.Adopt reqs_a))

let test_single_share_not_enough () =
  let fast =
    Types.Fast_preprepared { share = sigma_share ~replica:0 ~seq:1 ~view:1 reqs_a; view = 1; reqs = reqs_a }
  in
  let msgs =
    [ vc ~replica:0 [ slot 1 Types.No_commit fast ]; vc ~replica:1 []; vc ~replica:2 [] ]
  in
  check "one share -> null" true (decision_for 1 msgs = Some View_change.Fill_null)

let test_slow_preferred_on_tie () =
  (* v* = v̂ = 2: the prepare certificate must win (the paper's
     tie-breaking prefers the slow-path proof). *)
  let tau = tau_sig ~seq:1 ~view:2 reqs_a in
  let fast r = Types.Fast_preprepared { share = sigma_share ~replica:r ~seq:1 ~view:2 reqs_b; view = 2; reqs = reqs_b } in
  let msgs =
    [
      vc ~replica:0 [ slot 1 (Types.Slow_prepared { tau; view = 2; reqs = reqs_a }) (fast 0) ];
      vc ~replica:1 [ slot 1 Types.No_commit (fast 1) ];
      vc ~replica:2 [ slot 1 Types.No_commit (fast 2) ];
    ]
  in
  check "slow preferred" true (decision_for 1 msgs = Some (View_change.Adopt reqs_a))

let test_fast_beats_lower_prepare () =
  let tau = tau_sig ~seq:1 ~view:1 reqs_a in
  let fast r = Types.Fast_preprepared { share = sigma_share ~replica:r ~seq:1 ~view:3 reqs_b; view = 3; reqs = reqs_b } in
  let msgs =
    [
      vc ~replica:0 [ slot 1 (Types.Slow_prepared { tau; view = 1; reqs = reqs_a }) (fast 0) ];
      vc ~replica:1 [ slot 1 Types.No_commit (fast 1) ];
      vc ~replica:2 [ slot 1 Types.No_commit (fast 2) ];
    ]
  in
  check "fast at higher view wins" true (decision_for 1 msgs = Some (View_change.Adopt reqs_b))

let test_ambiguous_fast_ignored () =
  (* Two distinct values each with f+c+1 shares at the same top view:
     no unique fast value, and with no prepare either the slot is null. *)
  let fa r = Types.Fast_preprepared { share = sigma_share ~replica:r ~seq:1 ~view:2 reqs_a; view = 2; reqs = reqs_a } in
  let fb r = Types.Fast_preprepared { share = sigma_share ~replica:r ~seq:1 ~view:2 reqs_b; view = 2; reqs = reqs_b } in
  let msgs =
    [
      vc ~replica:0 [ slot 1 Types.No_commit (fa 0) ];
      vc ~replica:1 [ slot 1 Types.No_commit (fa 1) ];
      vc ~replica:2 [ slot 1 Types.No_commit (fb 2) ];
      vc ~replica:3 [ slot 1 Types.No_commit (fb 3) ];
    ]
  in
  check "ambiguous -> null" true (decision_for 1 msgs = Some View_change.Fill_null)

let test_forged_certificates_ignored () =
  (* A Byzantine replica claims prepares with invalid signatures; the
     computation must ignore them. *)
  let bogus_tau = Field.of_int 0xBAD in
  let msgs =
    [
      vc ~replica:0
        [ slot 1 (Types.Slow_prepared { tau = bogus_tau; view = 9; reqs = reqs_b }) Types.No_preprepare ];
      vc ~replica:1 []; vc ~replica:2 [];
    ]
  in
  check "forged ignored -> null" true (decision_for 1 msgs = Some View_change.Fill_null)

let test_share_signer_binding () =
  (* A pre-prepare share must come from the message's sender. *)
  let share = sigma_share ~replica:2 ~seq:1 ~view:1 reqs_a in
  let cert = Types.Fast_preprepared { share; view = 1; reqs = reqs_a } in
  let m = vc ~replica:0 [ slot 1 Types.No_commit cert ] in
  check "stolen share rejected" false (View_change.validate_message ~keys m);
  let own = Types.Fast_preprepared { share = sigma_share ~replica:0 ~seq:1 ~view:1 reqs_a; view = 1; reqs = reqs_a } in
  check "own share accepted" true
    (View_change.validate_message ~keys (vc ~replica:0 [ slot 1 Types.No_commit own ]))

let test_checkpoint_selection () =
  let digest = Sha256.digest "state-5" in
  let pi = pi_sig ~seq:5 ~digest in
  let good = vc ~ls:5 ~checkpoint:(Some (pi, digest)) ~replica:0 [] in
  let fake = vc ~ls:9 ~checkpoint:(Some (Field.of_int 1, digest)) ~replica:1 [] in
  let plain = vc ~replica:2 [] in
  check_int "valid checkpoint wins" 5 (View_change.select_stable ~keys [ good; fake; plain ]);
  check "invalid checkpoint rejected in validation" false
    (View_change.validate_message ~keys fake);
  check "genesis ok" true (View_change.validate_message ~keys plain)

let test_validate_window () =
  let cert = Types.Fast_preprepared { share = sigma_share ~replica:0 ~seq:999 ~view:0 reqs_a; view = 0; reqs = reqs_a } in
  let m = vc ~replica:0 [ slot 999 Types.No_commit cert ] in
  check "slot beyond window rejected" false (View_change.validate_message ~keys m)

let test_decision_reqs () =
  check "null fill" true
    (View_change.decision_reqs View_change.Fill_null = [ View_change.null_request ]);
  check "adopt" true (View_change.decision_reqs (View_change.Adopt reqs_a) = reqs_a)

let test_multi_slot_window () =
  (* A window with a committed slot, a prepared slot, a gap, and a
     fast-candidate slot: each decided independently; the gap is
     filled with null. *)
  let tau1 = tau_sig ~seq:1 ~view:0 reqs_a in
  let tau_tau1 = tau_tau_sig tau1 in
  let tau2 = tau_sig ~seq:2 ~view:1 reqs_b in
  let fast4 r v =
    Types.Fast_preprepared
      { share = sigma_share ~replica:r ~seq:4 ~view:v reqs_a; view = v; reqs = reqs_a }
  in
  let msgs =
    [
      vc ~replica:0
        [ slot 1 (Types.Slow_committed { tau = tau1; tau_tau = tau_tau1; view = 0; reqs = reqs_a })
            Types.No_preprepare;
          slot 4 Types.No_commit (fast4 0 2) ];
      vc ~replica:1
        [ slot 2 (Types.Slow_prepared { tau = tau2; view = 1; reqs = reqs_b })
            Types.No_preprepare;
          slot 4 Types.No_commit (fast4 1 2) ];
      vc ~replica:2 [];
    ]
  in
  let ls, ds = decide msgs in
  check_int "ls" 0 ls;
  check_int "decisions up to slot 4" 4 (List.length ds);
  (match List.assoc 1 ds with
  | View_change.Decide_slow { reqs; _ } -> check "slot1 committed" true (reqs = reqs_a)
  | _ -> Alcotest.fail "slot 1 should decide");
  check "slot2 adopted" true (List.assoc 2 ds = View_change.Adopt reqs_b);
  check "slot3 null (gap)" true (List.assoc 3 ds = View_change.Fill_null);
  check "slot4 fast adopted" true (List.assoc 4 ds = View_change.Adopt reqs_a)

let test_slots_above_checkpoint_only () =
  (* Slots at or below the selected stable checkpoint are not decided. *)
  let digest = Sha256.digest "state-3" in
  let pi = pi_sig ~seq:3 ~digest in
  let tau = tau_sig ~seq:2 ~view:0 reqs_a in
  let msgs =
    [
      vc ~ls:3 ~checkpoint:(Some (pi, digest)) ~replica:0 [];
      vc ~replica:1
        [ slot 2 (Types.Slow_prepared { tau; view = 0; reqs = reqs_a }) Types.No_preprepare ];
      vc ~replica:2 [];
    ]
  in
  let ls, ds = decide msgs in
  check_int "stable respected" 3 ls;
  check "no decisions below ls" true (List.for_all (fun (s, _) -> s > 3) ds)

let test_exactly_quorum_adopts () =
  (* The adoption threshold is exact: f+c+1 = 2 pre-prepare shares adopt
     a fast value, and the quorum set itself is exactly quorum_vc = 3
     messages with no slack.  Dropping either witness message falls
     below the threshold and the slot goes null. *)
  let mk r v =
    Types.Fast_preprepared
      { share = sigma_share ~replica:r ~seq:1 ~view:v reqs_a; view = v; reqs = reqs_a }
  in
  let w0 = vc ~replica:0 [ slot 1 Types.No_commit (mk 0 2) ] in
  let w1 = vc ~replica:1 [ slot 1 Types.No_commit (mk 1 2) ] in
  let empty = vc ~replica:2 [] in
  check "exact threshold adopts" true
    (decision_for 1 [ w0; w1; empty ] = Some (View_change.Adopt reqs_a));
  check "one witness below threshold -> null" true
    (decision_for 1 [ w0; empty; vc ~replica:3 [] ] = Some View_change.Fill_null);
  (* v̂ is the (f+c+1)-th largest view among the value's shares: with
     shares at views 3 and 1, v̂ = 1, so a prepare certificate at view 2
     must win even though one share sits at view 3. *)
  let tau = tau_sig ~seq:1 ~view:2 reqs_b in
  let msgs =
    [
      vc ~replica:0 [ slot 1 Types.No_commit (mk 0 3) ];
      vc ~replica:1 [ slot 1 Types.No_commit (mk 1 1) ];
      vc ~replica:2
        [ slot 1 (Types.Slow_prepared { tau; view = 2; reqs = reqs_b }) Types.No_preprepare ];
    ]
  in
  check "kth-largest view bounds the fast value" true
    (decision_for 1 msgs = Some (View_change.Adopt reqs_b))

let test_duplicate_senders_deduped () =
  (* A Byzantine replica relays two view-change messages under the same
     sender id, each contributing a share for reqs_b: counted twice they
     would fake the f+c+1 = 2 threshold and adopt reqs_b.  [compute]
     must count distinct replicas only (first message wins), leaving a
     single share -> null. *)
  let mk v =
    Types.Fast_preprepared
      { share = sigma_share ~replica:0 ~seq:1 ~view:v reqs_b; view = v; reqs = reqs_b }
  in
  let first = vc ~replica:0 [ slot 1 Types.No_commit (mk 2) ] in
  let second = vc ~replica:0 [ slot 1 Types.No_commit (mk 3) ] in
  let msgs = [ first; second; vc ~replica:1 []; vc ~replica:2 [] ] in
  check "duplicate sender not double-counted" true
    (decision_for 1 msgs = Some View_change.Fill_null);
  (* The honest two-sender version of the same evidence does adopt —
     the dedup is what separates the cases. *)
  let honest =
    [
      vc ~replica:0 [ slot 1 Types.No_commit (mk 2) ];
      vc ~replica:1
        [ slot 1 Types.No_commit
            (Types.Fast_preprepared
               { share = sigma_share ~replica:1 ~seq:1 ~view:3 reqs_b; view = 3; reqs = reqs_b }) ];
      vc ~replica:2 [];
    ]
  in
  check "distinct senders adopt" true (decision_for 1 honest = Some (View_change.Adopt reqs_b))

let test_stale_view_entries_ignored () =
  (* A laggard (or Stale_view_change Byzantine) replica contributes
     entries anchored below the quorum's certified checkpoint and a
     stale low-view prepare for a conflicting value.  The stable
     sequence must come from the valid checkpoint, slots at or below it
     are not decided, and above it the fresher prepare wins. *)
  let digest = Sha256.digest "state-3" in
  let pi = pi_sig ~seq:3 ~digest in
  let stale_tau = tau_sig ~seq:2 ~view:0 reqs_b in
  let stale_above = tau_sig ~seq:4 ~view:0 reqs_b in
  let fresh = tau_sig ~seq:4 ~view:2 reqs_a in
  let msgs =
    [
      vc ~ls:3 ~checkpoint:(Some (pi, digest)) ~replica:0
        [ slot 4 (Types.Slow_prepared { tau = fresh; view = 2; reqs = reqs_a })
            Types.No_preprepare ];
      vc ~replica:1
        [ slot 2 (Types.Slow_prepared { tau = stale_tau; view = 0; reqs = reqs_b })
            Types.No_preprepare;
          slot 4 (Types.Slow_prepared { tau = stale_above; view = 0; reqs = reqs_b })
            Types.No_preprepare ];
      vc ~replica:2 [];
    ]
  in
  let ls, ds = decide msgs in
  check_int "checkpoint anchors ls" 3 ls;
  check "stale below-ls slot dropped" true (List.assoc_opt 2 ds = None);
  check "fresh prepare beats stale one" true
    (List.assoc_opt 4 ds = Some (View_change.Adopt reqs_a))

(* ------------------------------------------------------------------ *)
(* Property: a value committed on either path survives any view change
   quorum that includes its honest witnesses. *)

let prop_committed_value_survives =
  qtest "committed value survives random VC quorums"
    QCheck2.Gen.(triple (int_range 0 1000) bool (int_range 0 3))
    (fun (seed, fast_path, byz_replica) ->
      let rng = Sbft_sim.Rng.create (Int64.of_int (seed + 99)) in
      let cview = 1 + Sbft_sim.Rng.int rng 3 in
      (* Honest witnesses per the commit quorum: slow commit -> f+c+1=2
         hold prepare certs; fast commit -> 2f+c+1=3 hold pre-prepare
         shares at view >= cview. *)
      let honest = [ 0; 1; 2 ] in
      let mk_honest r =
        if fast_path then begin
          let share = sigma_share ~replica:r ~seq:1 ~view:cview reqs_a in
          vc ~replica:r
            [ slot 1 Types.No_commit
                (Types.Fast_preprepared { share; view = cview; reqs = reqs_a }) ]
        end
        else begin
          let tau = tau_sig ~seq:1 ~view:cview reqs_a in
          vc ~replica:r
            [ slot 1 (Types.Slow_prepared { tau; view = cview; reqs = reqs_a })
                Types.No_preprepare ]
        end
      in
      (* The Byzantine member sends stale or junk info, possibly for a
         conflicting value at a lower view. *)
      let byz =
        let stale_view = max 0 (cview - 1) in
        let share = sigma_share ~replica:byz_replica ~seq:1 ~view:stale_view reqs_b in
        vc ~replica:byz_replica
          [ slot 1 Types.No_commit
              (Types.Fast_preprepared { share; view = stale_view; reqs = reqs_b }) ]
      in
      let msgs = List.map mk_honest honest @ [ byz ] in
      (* Any quorum (3 of these 4) that contains the honest witnesses. *)
      let _, ds = decide msgs in
      match List.assoc_opt 1 ds with
      | Some (View_change.Adopt reqs) -> reqs = reqs_a
      | Some (View_change.Decide_fast { reqs; _ })
      | Some (View_change.Decide_slow { reqs; _ }) -> reqs = reqs_a
      | _ -> false)

let prop_decisions_deterministic =
  (* The computation must be a pure function of the message SET: message
     order must not matter (replicas independently recompute it from the
     new-view payload). *)
  qtest "order-independence of the quorum set"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = Sbft_sim.Rng.create (Int64.of_int (seed + 3)) in
      let cview = Sbft_sim.Rng.int rng 3 in
      let share r = sigma_share ~replica:r ~seq:1 ~view:cview reqs_a in
      let tau = tau_sig ~seq:1 ~view:cview reqs_b in
      let msgs =
        [
          vc ~replica:0
            [ slot 1 Types.No_commit
                (Types.Fast_preprepared { share = share 0; view = cview; reqs = reqs_a }) ];
          vc ~replica:1
            [ slot 1 (Types.Slow_prepared { tau; view = cview; reqs = reqs_b })
                Types.No_preprepare ];
          vc ~replica:2
            [ slot 1 Types.No_commit
                (Types.Fast_preprepared { share = share 2; view = cview; reqs = reqs_a }) ];
          vc ~replica:3 [];
        ]
      in
      let arr = Array.of_list msgs in
      Sbft_sim.Rng.shuffle rng arr;
      decide msgs = decide (Array.to_list arr))

let () =
  Alcotest.run "sbft_view_change"
    [
      ( "safe-values",
        [
          Alcotest.test_case "empty quorum" `Quick test_empty_quorum;
          Alcotest.test_case "slow commit decides" `Quick test_slow_commit_decides;
          Alcotest.test_case "fast commit decides" `Quick test_fast_commit_decides;
          Alcotest.test_case "prepared adopted" `Quick test_prepared_adopted;
          Alcotest.test_case "highest prepare wins" `Quick test_highest_prepare_wins;
          Alcotest.test_case "fast value adopted" `Quick test_fast_value_adopted;
          Alcotest.test_case "single share insufficient" `Quick test_single_share_not_enough;
          Alcotest.test_case "slow preferred on tie" `Quick test_slow_preferred_on_tie;
          Alcotest.test_case "fast beats lower prepare" `Quick test_fast_beats_lower_prepare;
          Alcotest.test_case "ambiguous fast ignored" `Quick test_ambiguous_fast_ignored;
          Alcotest.test_case "forged certs ignored" `Quick test_forged_certificates_ignored;
          Alcotest.test_case "share signer binding" `Quick test_share_signer_binding;
          Alcotest.test_case "checkpoint selection" `Quick test_checkpoint_selection;
          Alcotest.test_case "window validation" `Quick test_validate_window;
          Alcotest.test_case "decision reqs" `Quick test_decision_reqs;
          Alcotest.test_case "multi-slot window" `Quick test_multi_slot_window;
          Alcotest.test_case "checkpoint bounds slots" `Quick test_slots_above_checkpoint_only;
          Alcotest.test_case "exactly-quorum adoption" `Quick test_exactly_quorum_adopts;
          Alcotest.test_case "duplicate senders deduped" `Quick test_duplicate_senders_deduped;
          Alcotest.test_case "stale-view entries ignored" `Quick test_stale_view_entries_ignored;
        ] );
      ("properties", [ prop_committed_value_survives; prop_decisions_deterministic ]);
    ]
