(* Tests for the runtime protocol sanitizer: the quorum arithmetic and
   commit/execute bookkeeping in isolation, fault injection (wrong
   replica counts, undersized quorums, conflicting commits, execution
   before commit), and an end-to-end check that live SBFT clusters
   exercise the sanitizer on every commit without violations. *)

open Sbft_sim
open Sbft_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let violates name f =
  match f () with
  | () -> Alcotest.fail (name ^ ": expected Sanitizer.Violation")
  | exception Sanitizer.Violation _ -> ()

let make_san ?(f = 1) ?(c = 0) () = Sanitizer.create ~f ~c ()

(* ------------------------------------------------------------------ *)
(* Quorum arithmetic *)

let test_thresholds () =
  (* f=1, c=1: n = 3f + 2c + 1 = 6. *)
  let t = make_san ~f:1 ~c:1 () in
  check_int "sigma" 5 (Sanitizer.threshold t Sanitizer.Sigma);
  check_int "tau" 4 (Sanitizer.threshold t Sanitizer.Tau);
  check_int "pi" 2 (Sanitizer.threshold t Sanitizer.Pi);
  check_int "vc" 5 (Sanitizer.threshold t Sanitizer.Vc);
  check_int "majority" 3 (Sanitizer.threshold t Sanitizer.Majority);
  Sanitizer.check_config t ~n:6

let test_check_config_rejects_bad_n () =
  let t = make_san ~f:1 ~c:0 () in
  Sanitizer.check_config t ~n:4;
  (* A 3f+c+1-style miscount — the classic quorum-arithmetic slip. *)
  violates "n too small" (fun () -> Sanitizer.check_config t ~n:3);
  violates "n too large" (fun () -> Sanitizer.check_config t ~n:5)

let test_check_quorum () =
  let t = make_san ~f:1 ~c:0 () in
  (* n = 4; tau = 2f + c + 1 = 3. *)
  Sanitizer.check_quorum t Sanitizer.Tau ~count:3;
  Sanitizer.check_quorum t Sanitizer.Tau ~count:4;
  violates "undersized quorum" (fun () ->
      Sanitizer.check_quorum t Sanitizer.Tau ~count:2);
  violates "more shares than replicas" (fun () ->
      Sanitizer.check_quorum t Sanitizer.Sigma ~count:5);
  (* sigma = 3f + c + 1 = 4: a 2f+1-sized certificate must not pass. *)
  violates "fast path with slow-path quorum" (fun () ->
      Sanitizer.check_quorum t Sanitizer.Sigma ~count:3)

(* ------------------------------------------------------------------ *)
(* Commit / execute bookkeeping *)

let test_commit_execute_happy () =
  let t = make_san () in
  for seq = 1 to 5 do
    Sanitizer.record_commit t ~seq ~view:0 ~digest:(Printf.sprintf "d%d" seq);
    Sanitizer.record_execute t ~seq
  done;
  check "checks ran" true (Sanitizer.checks_run t > 0)

let test_conflicting_commit () =
  let t = make_san () in
  Sanitizer.record_commit t ~seq:1 ~view:0 ~digest:"block-a";
  (* Re-committing the same block (retransmission) is fine... *)
  Sanitizer.record_commit t ~seq:1 ~view:0 ~digest:"block-a";
  (* ...committing a different one at the same seq is equivocation. *)
  violates "two blocks at one seq" (fun () ->
      Sanitizer.record_commit t ~seq:1 ~view:1 ~digest:"block-b")

let test_execute_before_commit () =
  let t = make_san () in
  violates "no commit proof" (fun () -> Sanitizer.record_execute t ~seq:1)

let test_execute_out_of_order () =
  let t = make_san () in
  Sanitizer.record_commit t ~seq:1 ~view:0 ~digest:"a";
  Sanitizer.record_commit t ~seq:3 ~view:0 ~digest:"c";
  Sanitizer.record_execute t ~seq:1;
  violates "gap in execution" (fun () -> Sanitizer.record_execute t ~seq:3);
  violates "re-execution" (fun () -> Sanitizer.record_execute t ~seq:1)

let test_view_monotonic () =
  let t = make_san () in
  Sanitizer.record_view_entry t ~view:1;
  Sanitizer.record_view_entry t ~view:4;
  violates "view repeat" (fun () -> Sanitizer.record_view_entry t ~view:4);
  violates "view backwards" (fun () -> Sanitizer.record_view_entry t ~view:2)

let test_state_transfer () =
  let t = make_san () in
  (* A certified snapshot may jump the frontier forward over a gap. *)
  Sanitizer.record_state_transfer t ~seq:10;
  Sanitizer.record_commit t ~seq:11 ~view:0 ~digest:"k";
  Sanitizer.record_execute t ~seq:11;
  violates "snapshot moves frontier back" (fun () ->
      Sanitizer.record_state_transfer t ~seq:5)

let test_prune () =
  let t = make_san () in
  for seq = 1 to 4 do
    Sanitizer.record_commit t ~seq ~view:0 ~digest:(string_of_int seq);
    Sanitizer.record_execute t ~seq
  done;
  Sanitizer.prune_below t ~seq:4;
  (* Pruned slots are forgotten; later slots keep their protection. *)
  Sanitizer.record_commit t ~seq:4 ~view:0 ~digest:"4";
  violates "post-prune conflict still caught" (fun () ->
      Sanitizer.record_commit t ~seq:4 ~view:0 ~digest:"not-4")

let test_disabled_is_noop () =
  let t = Sanitizer.create ~enabled:false ~f:1 ~c:0 () in
  check "disabled" false (Sanitizer.enabled t);
  (* Every would-be violation passes silently and counts nothing. *)
  Sanitizer.check_config t ~n:17;
  Sanitizer.check_quorum t Sanitizer.Sigma ~count:0;
  Sanitizer.record_execute t ~seq:99;
  check_int "no checks" 0 (Sanitizer.checks_run t)

(* ------------------------------------------------------------------ *)
(* End-to-end: live clusters run with the sanitizer enabled *)

let put ~client i =
  Sbft_store.Kv_service.put
    ~key:(Printf.sprintf "k%d-%d" client i)
    ~value:(string_of_int i)

let drive ~config =
  let cluster =
    Cluster.create ~seed:1L ~config ~num_clients:2
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Cluster.kv_service ()
  in
  Cluster.start_clients cluster ~requests_per_client:20 ~make_op:put;
  Cluster.run_for cluster (Engine.sec 60);
  cluster

let test_cluster_exercises_sanitizer () =
  let cluster = drive ~config:(Config.sbft ~f:1 ~c:0) in
  check "agreement" true (Cluster.agreement_ok cluster);
  check "progress" true (Cluster.total_completed cluster > 0);
  Array.iter
    (fun r ->
      let san = Replica.sanitizer r in
      check "sanitizer on" true (Sanitizer.enabled san);
      check "sanitizer exercised" true (Sanitizer.checks_run san > 0))
    cluster.Cluster.replicas

let test_cluster_slow_path_exercises_sanitizer () =
  let cluster = drive ~config:(Config.linear_pbft ~f:1) in
  check "agreement" true (Cluster.agreement_ok cluster);
  Array.iter
    (fun r -> check "sanitizer exercised" true (Sanitizer.checks_run (Replica.sanitizer r) > 0))
    cluster.Cluster.replicas

let test_cluster_sanitize_off () =
  let config = { (Config.sbft ~f:1 ~c:0) with Config.sanitize = false } in
  let cluster = drive ~config in
  check "agreement" true (Cluster.agreement_ok cluster);
  Array.iter
    (fun r -> check_int "no checks" 0 (Sanitizer.checks_run (Replica.sanitizer r)))
    cluster.Cluster.replicas

let () =
  Alcotest.run "sbft_sanitizer"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "thresholds" `Quick test_thresholds;
          Alcotest.test_case "bad n" `Quick test_check_config_rejects_bad_n;
          Alcotest.test_case "quorum sizes" `Quick test_check_quorum;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "commit/execute" `Quick test_commit_execute_happy;
          Alcotest.test_case "conflicting commit" `Quick test_conflicting_commit;
          Alcotest.test_case "execute before commit" `Quick test_execute_before_commit;
          Alcotest.test_case "out-of-order execute" `Quick test_execute_out_of_order;
          Alcotest.test_case "view monotonic" `Quick test_view_monotonic;
          Alcotest.test_case "state transfer" `Quick test_state_transfer;
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "disabled" `Quick test_disabled_is_noop;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fast path" `Quick test_cluster_exercises_sanitizer;
          Alcotest.test_case "slow path" `Quick test_cluster_slow_path_exercises_sanitizer;
          Alcotest.test_case "opt-out" `Quick test_cluster_sanitize_off;
        ] );
    ]
