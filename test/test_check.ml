(* The schedule fuzzer's own test suite:

   - DSL codec: parse ∘ emit is the identity, emit ∘ parse ∘ emit is
     byte-identical, and random schedules round-trip (QCheck).
   - Determinism: running the same schedule twice gives identical
     verdicts and event counts.
   - Shrinking: ddmin produces a 1-minimal step list.
   - Mutation check: with the weak-sigma quorum weakening enabled the
     agreement oracle must detect a violation within a bounded number of
     seeded schedules, and the shrunk counterexample stays small
     (≤ 10 steps) — this is the evidence that the oracle catches real
     safety bugs rather than vacuously passing.
   - Corpus: every committed .schedule replays with its expected
     verdict (the dune deps glob makes these runs part of `dune
     runtest`). *)

open Sbft_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* DSL codec *)

let sample_schedule =
  {
    (Schedule.default ~name:"sample" ~seed:7L) with
    Schedule.f = 1;
    c = 1;
    clients = 2;
    requests = 6;
    topology = Schedule.Continent;
    acks = false;
    wal = false;
    mutation = Schedule.Weak_sigma;
    gst_ms = Some 15_000;
    horizon_ms = 60_000;
    expect = Schedule.Expect_fail "agreement";
    steps =
      [
        { Schedule.at_ms = 1_000; action = Schedule.Crash 3 };
        { Schedule.at_ms = 1_200; action = Schedule.Crash_amnesia 1 };
        { Schedule.at_ms = 1_500; action = Schedule.Partition [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] };
        { Schedule.at_ms = 2_000; action = Schedule.Set_drop 0.25 };
        { Schedule.at_ms = 2_500; action = Schedule.Delay_link { src = 0; dst = 4; delay_ms = 120 } };
        { Schedule.at_ms = 3_000; action = Schedule.Isolate 2 };
        { Schedule.at_ms = 9_000; action = Schedule.Byzantine (0, Schedule.Equivocate) };
        { Schedule.at_ms = 15_000; action = Schedule.Heal };
        { Schedule.at_ms = 15_000; action = Schedule.Reconnect 2 };
        { Schedule.at_ms = 15_000; action = Schedule.Recover 3 };
        { Schedule.at_ms = 15_000; action = Schedule.Byzantine (0, Schedule.Honest) };
      ];
  }

let test_roundtrip () =
  let text = Schedule.to_string sample_schedule in
  match Schedule.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      check_str "byte-identical re-emission" text (Schedule.to_string parsed);
      check_int "steps survive" (List.length sample_schedule.Schedule.steps)
        (List.length parsed.Schedule.steps);
      check "gst survives" true (parsed.Schedule.gst_ms = Some 15_000);
      check "mutation survives" true
        (match parsed.Schedule.mutation with Schedule.Weak_sigma -> true | _ -> false)

let test_parse_rejects () =
  let reject what text =
    match Schedule.parse text with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" what
    | Error _ -> ()
  in
  reject "empty" "";
  reject "wrong header" "sbft-schedule v2\nend\n";
  reject "missing end" "sbft-schedule v1\nname x\n";
  reject "bad action" "sbft-schedule v1\nstep 100 explode 3\nend\n";
  reject "bad drop" "sbft-schedule v1\nstep 100 drop 1.5\nend\n";
  reject "bad topology" "sbft-schedule v1\ntopology moon\nend\n";
  reject "zero clients" "sbft-schedule v1\nclients 0\nend\n"

let test_parse_comments_and_whitespace () =
  let text =
    "# a comment\nsbft-schedule v1\n\nname c\n  seed 3\nstep 10 heal\nend\n# trailing\n"
  in
  match Schedule.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      check_str "name" "c" t.Schedule.name;
      check "seed" true (Int64.equal t.Schedule.seed 3L);
      check_int "steps" 1 (List.length t.Schedule.steps)

let qtest name count gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let prop_generated_roundtrip =
  qtest "generated schedules round-trip byte-identically" 30
    QCheck2.Gen.(int_range 0 100_000)
    (fun index ->
      let sched = Gen.generate ~seed:0xC0DECL index in
      let text = Schedule.to_string sched in
      match Schedule.parse text with
      | Error e -> QCheck2.Test.fail_reportf "parse failed: %s\n%s" e text
      | Ok parsed -> String.equal text (Schedule.to_string parsed))

let prop_adversarial_roundtrip =
  (* Same identity, but over schedules carrying the adaptive-adversary
     header and the gray-failure / rollback actions the adversarial
     profile generates. *)
  qtest "adversarial schedules round-trip byte-identically" 30
    QCheck2.Gen.(int_range 0 100_000)
    (fun index ->
      let sched =
        Gen.generate
          ~profile:{ Gen.default_profile with Gen.adversarial = true }
          ~seed:0xADC0DEL index
      in
      let text = Schedule.to_string sched in
      match Schedule.parse text with
      | Error e -> QCheck2.Test.fail_reportf "parse failed: %s\n%s" e text
      | Ok parsed -> String.equal text (Schedule.to_string parsed))

let prop_generator_respects_fault_budget =
  (* The safety proofs assume at most f replicas ever misbehave; the
     generator must respect that across BOTH channels — static
     [Byzantine] steps and the adaptive adversary's colluder pool — or
     a failing oracle could be an over-budget adversary rather than a
     protocol bug. *)
  qtest "generated adversaries stay within the f budget" 40
    QCheck2.Gen.(int_range 0 100_000)
    (fun index ->
      let sched =
        Gen.generate
          ~profile:{ Gen.default_profile with Gen.adversarial = true }
          ~seed:0xB00DAL index
      in
      let n = Schedule.num_replicas sched in
      let static =
        List.filter_map
          (fun (st : Schedule.step) ->
            match st.Schedule.action with
            | Schedule.Byzantine (node, b)
              when not (match b with Schedule.Honest -> true | _ -> false) ->
                Some node
            | _ -> None)
          sched.Schedule.steps
      in
      let pool =
        match sched.Schedule.adversary with None -> [] | Some a -> a.Schedule.pool
      in
      let suspects = List.sort_uniq Int.compare (static @ pool) in
      List.length suspects <= sched.Schedule.f
      && List.for_all (fun p -> p >= 0 && p < n) suspects
      &&
      match sched.Schedule.adversary with
      | None -> true
      | Some a ->
          a.Schedule.budget >= 0 && a.Schedule.every_ms >= 1
          && a.Schedule.until_ms >= a.Schedule.from_ms)

let prop_ddmin_one_minimal =
  (* Pure ddmin property: for a random monotone predicate ("the list
     still contains this target subset") the result must still fail and
     be 1-minimal — removing any single surviving step passes. *)
  qtest "ddmin output is 1-minimal and still failing" 50
    QCheck2.Gen.(pair (int_range 1 24) (int_range 0 0xFFF))
    (fun (len, mask) ->
      let steps =
        List.init len (fun i -> { Schedule.at_ms = 100 * (i + 1); action = Schedule.Crash i })
      in
      let in_target i = (mask lsr (i mod 12)) land 1 = 1 in
      let target =
        match List.filteri (fun i _ -> in_target i) steps with
        | [] -> [ List.hd steps ]
        | t -> t
      in
      let still_fails candidate =
        List.for_all (fun t -> List.mem t candidate) target
      in
      let minimal = Shrink.ddmin ~still_fails steps in
      still_fails minimal
      && List.for_all
           (fun i -> not (still_fails (List.filteri (fun j _ -> not (Int.equal i j)) minimal)))
           (List.init (List.length minimal) Fun.id))

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_run_deterministic () =
  let sched = Gen.generate ~profile:{ Gen.default_profile with quick = true } ~seed:0xDE7L 3 in
  let a = Runner.run sched and b = Runner.run sched in
  check_int "events equal" a.Runner.events b.Runner.events;
  check_int "completed equal" a.Runner.completed b.Runner.completed;
  check "verdicts equal" true
    (List.equal
       (fun (x : Oracle.verdict) (y : Oracle.verdict) ->
         String.equal x.Oracle.name y.Oracle.name
         && Bool.equal x.Oracle.pass y.Oracle.pass
         && String.equal x.Oracle.detail y.Oracle.detail)
       a.Runner.verdicts b.Runner.verdicts)

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let test_ddmin_minimal () =
  (* Pure predicate: "fails" iff the list still contains both Crash 0
     and Crash 5 — ddmin must strip the six decoys and keep exactly
     those two, in order. *)
  let mk n = { Schedule.at_ms = 100 * (n + 1); action = Schedule.Crash n } in
  let has n s = List.exists (fun (st : Schedule.step) -> st.Schedule.action = Schedule.Crash n) s in
  let still_fails s = has 0 s && has 5 s in
  let minimal = Shrink.ddmin ~still_fails (List.init 8 mk) in
  check_int "two steps survive" 2 (List.length minimal);
  check "crash 0 kept" true (has 0 minimal);
  check "crash 5 kept" true (has 5 minimal);
  (* 1-minimality: removing either remaining step breaks the predicate. *)
  List.iteri
    (fun i _ ->
      check "removing any survivor breaks it" false
        (still_fails (List.filteri (fun j _ -> not (Int.equal i j)) minimal)))
    minimal;
  (* Degenerate inputs *)
  check_int "empty input" 0 (List.length (Shrink.ddmin ~still_fails:(fun _ -> true) []));
  check_int "singleton input" 1
    (List.length (Shrink.ddmin ~still_fails:(fun s -> List.length s > 0) [ mk 0 ]))

(* ------------------------------------------------------------------ *)
(* Mutation check: the oracle must catch a genuinely weakened protocol *)

let find_mutation_failure ~max_seeds =
  let rec go index =
    if index >= max_seeds then None
    else
      let sched = Gen.generate_mutation ~seed:1L index in
      let outcome = Runner.run sched in
      match outcome.Runner.failed with
      | Some v when String.equal v.Oracle.name "agreement" -> Some (sched, outcome)
      | _ -> go (index + 1)
  in
  go 0

let test_mutation_detected () =
  match find_mutation_failure ~max_seeds:10 with
  | None ->
      Alcotest.fail
        "agreement oracle failed to detect the weak-sigma mutation within 10 seeded schedules"
  | Some (sched, _) -> (
      let minimal = Shrink.minimize ~oracle:"agreement" sched in
      check "shrunk schedule still fails agreement" true
        (Runner.fails_on minimal ~oracle:"agreement");
      check "shrunk schedule is small (<= 10 steps)" true
        (List.length minimal.Schedule.steps <= 10);
      (* 1-minimality: removing any single remaining step loses the
         violation-or-keeps-it; it must never crash, and the artifact
         replays from its serialized form. *)
      match Schedule.parse (Schedule.to_string minimal) with
      | Error e -> Alcotest.failf "shrunk artifact does not re-parse: %s" e
      | Ok reparsed ->
          check "reparsed artifact still fails" true
            (Runner.fails_on reparsed ~oracle:"agreement"))

let test_unmutated_baseline_passes () =
  (* The same schedule with the mutation switched off must pass: the
     violation comes from the weakened quorum, not from the schedule. *)
  match find_mutation_failure ~max_seeds:10 with
  | None -> Alcotest.fail "no mutation failure found"
  | Some (sched, _) -> (
      let healthy = { sched with Schedule.mutation = Schedule.No_mutation } in
      let outcome = Runner.run healthy in
      match outcome.Runner.failed with
      | Some v ->
          Alcotest.failf "unmutated run failed %s: %s" v.Oracle.name v.Oracle.detail
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Corpus replay (runs under `dune runtest` via the deps glob) *)

let corpus_dir = "corpus"

let corpus_tests () =
  let files =
    if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".schedule")
      |> List.sort String.compare
    else []
  in
  if List.length files = 0 then
    [ Alcotest.test_case "corpus present" `Quick (fun () -> Alcotest.fail "test/corpus is empty") ]
  else
    List.map
      (fun file ->
        Alcotest.test_case file `Slow (fun () ->
            match Schedule.load ~path:(Filename.concat corpus_dir file) with
            | Error e -> Alcotest.failf "cannot load %s: %s" file e
            | Ok sched -> (
                (* Committed artifacts must be in canonical form so a
                   diff against a freshly shrunk artifact is meaningful. *)
                let outcome = Runner.run sched in
                match Runner.meets_expectation outcome with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s: %s" file e)))
      files

let () =
  Alcotest.run "sbft_check"
    [
      ( "schedule-dsl",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_parse_rejects;
          Alcotest.test_case "comments and whitespace" `Quick test_parse_comments_and_whitespace;
          prop_generated_roundtrip;
          prop_adversarial_roundtrip;
          prop_generator_respects_fault_budget;
        ] );
      ("determinism", [ Alcotest.test_case "same schedule, same run" `Quick test_run_deterministic ]);
      ( "shrink",
        [
          Alcotest.test_case "ddmin predicate sanity" `Quick test_ddmin_minimal;
          prop_ddmin_one_minimal;
        ] );
      ( "mutation-check",
        [
          Alcotest.test_case "weak-sigma detected and shrunk" `Slow test_mutation_detected;
          Alcotest.test_case "unmutated baseline passes" `Slow test_unmutated_baseline_passes;
        ] );
      ("corpus", corpus_tests ());
    ]
