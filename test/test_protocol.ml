(* End-to-end protocol tests: all five evaluation variants commit and
   execute client operations with agreement; crash faults exercise the
   fast/slow dual mode and the c-redundancy; primary failures drive the
   view change; Byzantine behaviours (equivocation, corrupt shares,
   stale view-change info) never break safety; state transfer catches a
   lagging replica up; and the whole simulation is deterministic. *)

open Sbft_sim
open Sbft_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let put ~client i =
  Sbft_store.Kv_service.put ~key:(Printf.sprintf "k%d-%d" client i) ~value:(string_of_int i)

let make ?(seed = 1L) ?(config = Config.sbft ~f:1 ~c:0) ?(num_clients = 2)
    ?(topology = fun ~num_nodes -> Topology.lan ~num_nodes) () =
  Cluster.create ~seed ~config ~num_clients ~topology ~service:Cluster.kv_service ()

let drive ?(reqs = 20) ?(secs = 60) cluster =
  Cluster.start_clients cluster ~requests_per_client:reqs ~make_op:put;
  Cluster.run_for cluster (Engine.sec secs);
  cluster

let alive cluster =
  Array.to_list cluster.Cluster.replicas
  |> List.filter (fun r -> not (Engine.is_crashed cluster.Cluster.engine (Replica.id r)))

let assert_all_done ?(reqs = 20) cluster =
  check_int "all requests completed"
    (reqs * Array.length cluster.Cluster.clients)
    (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster)

(* ------------------------------------------------------------------ *)
(* Happy paths for every protocol variant *)

let test_fast_path_happy () =
  let cluster = drive (make ()) in
  assert_all_done cluster;
  List.iter
    (fun r ->
      check "all fast" true (Replica.fast_commits r > 0);
      check_int "no slow" 0 (Replica.slow_commits r);
      check_int "no view change" 0 (Replica.view_changes_completed r))
    (alive cluster)

let test_linear_pbft_happy () =
  let cluster = drive (make ~config:(Config.linear_pbft ~f:1) ()) in
  assert_all_done cluster;
  List.iter
    (fun r ->
      check_int "no fast" 0 (Replica.fast_commits r);
      check "all slow" true (Replica.slow_commits r > 0))
    (alive cluster)

let test_linear_pbft_fast_happy () =
  let cluster = drive (make ~config:(Config.linear_pbft_fast ~f:1) ()) in
  assert_all_done cluster;
  List.iter (fun r -> check "fast used" true (Replica.fast_commits r > 0)) (alive cluster)

let test_sbft_c8_style () =
  (* c=1 keeps f=1: n = 3+2+1 = 6. *)
  let cluster = drive (make ~config:(Config.sbft ~f:1 ~c:1) ()) in
  assert_all_done cluster

let test_f2 () =
  let cluster = drive (make ~config:(Config.sbft ~f:2 ~c:0) ~num_clients:3 ()) in
  assert_all_done cluster

(* ------------------------------------------------------------------ *)
(* Crash faults: dual-mode behaviour *)

let test_crash_backup_forces_slow_path () =
  let cluster = make () in
  Cluster.crash_replicas cluster [ 3 ];
  ignore (drive cluster);
  assert_all_done cluster;
  List.iter
    (fun r ->
      check_int "fast path impossible" 0 (Replica.fast_commits r);
      check "slow commits" true (Replica.slow_commits r > 0))
    (alive cluster)

let test_crash_within_c_keeps_fast_path () =
  (* f=1 c=1: n=6, σ-threshold 5 — one crashed replica still allows σ. *)
  let cluster = make ~config:(Config.sbft ~f:1 ~c:1) () in
  Cluster.crash_replicas cluster [ 5 ];
  ignore (drive cluster);
  assert_all_done cluster;
  List.iter
    (fun r -> check "fast survives c crash" true (Replica.fast_commits r > 0))
    (alive cluster)

let test_crash_beyond_c_falls_back () =
  let cluster = make ~config:(Config.sbft ~f:2 ~c:1) () in
  (* n = 9; crash 2 > c=1 -> slow path. *)
  Cluster.crash_replicas cluster [ 7; 8 ];
  ignore (drive cluster);
  assert_all_done cluster;
  List.iter
    (fun r -> check_int "no fast beyond c" 0 (Replica.fast_commits r))
    (alive cluster)

let test_crash_primary_view_change () =
  let cluster = make () in
  Cluster.crash_replicas cluster [ 0 ];
  ignore (drive cluster);
  assert_all_done cluster;
  List.iter
    (fun r ->
      check "view advanced" true (Replica.view r >= 1);
      check "view change counted" true (Replica.view_changes_completed r >= 1))
    (alive cluster)

let test_primary_crash_mid_run () =
  (* Crash the primary after progress started: committed-but-unexecuted
     work must survive into the new view. *)
  let cluster = make ~num_clients:4 () in
  Cluster.start_clients cluster ~requests_per_client:30 ~make_op:put;
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 200) (fun () ->
      Engine.crash cluster.Cluster.engine 0);
  Cluster.run_for cluster (Engine.sec 90);
  check_int "all done" 120 (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster)

let test_cascaded_primary_crashes () =
  let cluster = make ~config:(Config.sbft ~f:2 ~c:0) ~num_clients:2 () in
  (* Enough load to keep the system busy across both crashes. *)
  Cluster.start_clients cluster ~requests_per_client:400 ~make_op:put;
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 100) (fun () ->
      Engine.crash cluster.Cluster.engine 0);
  Engine.schedule cluster.Cluster.engine ~at:(Engine.sec 4) (fun () ->
      Engine.crash cluster.Cluster.engine 1);
  Cluster.run_for cluster (Engine.sec 180);
  check_int "all done" 800 (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  List.iter (fun r -> check "view >= 2" true (Replica.view r >= 2)) (alive cluster)

(* ------------------------------------------------------------------ *)
(* Byzantine behaviours *)

let test_equivocating_primary_safety () =
  let cluster = make ~num_clients:2 () in
  Replica.set_byzantine cluster.Cluster.replicas.(0) Replica.Equivocating_primary;
  ignore (drive ~secs:120 cluster);
  (* Equivocation can never produce conflicting commits; the view change
     removes the primary and the requests eventually execute. *)
  check "agreement under equivocation" true (Cluster.agreement_ok cluster);
  assert_all_done cluster;
  List.iter (fun r -> check "vc happened" true (Replica.view r >= 1)) (alive cluster)

let test_corrupt_shares_robustness () =
  (* A backup sending invalid signature shares must not block progress:
     robust combination filters them.  With f=1,c=0 the fast path needs
     every replica, so commits fall back to the slow path. *)
  let cluster = make () in
  Replica.set_byzantine cluster.Cluster.replicas.(2) Replica.Corrupt_shares;
  ignore (drive cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  check_int "all done" 40 (Cluster.total_completed cluster)

let test_silent_replica () =
  let cluster = make () in
  Replica.set_byzantine cluster.Cluster.replicas.(1) Replica.Silent;
  ignore (drive cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  check_int "all done" 40 (Cluster.total_completed cluster)

let test_wrong_exec_digest () =
  (* A replica announcing bogus state digests must not wedge the
     execution collectors: honest shares bucket separately and the
     clients still get their single-message acks. *)
  let cluster = make ~config:(Config.sbft ~f:1 ~c:1) () in
  Replica.set_byzantine cluster.Cluster.replicas.(2) Replica.Wrong_exec_digest;
  ignore (drive cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  check_int "all done" 40 (Cluster.total_completed cluster)

let test_stale_view_change_messages () =
  (* Byzantine replica sends stale/empty view-change info while the
     primary crashes: the view change must still reconcile correctly. *)
  let cluster = make ~config:(Config.sbft ~f:1 ~c:1) ~num_clients:2 () in
  Replica.set_byzantine cluster.Cluster.replicas.(4) Replica.Stale_view_change;
  Cluster.start_clients cluster ~requests_per_client:20 ~make_op:put;
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 300) (fun () ->
      Engine.crash cluster.Cluster.engine 0);
  Cluster.run_for cluster (Engine.sec 90);
  check "agreement" true (Cluster.agreement_ok cluster);
  check_int "all done" 40 (Cluster.total_completed cluster)

(* ------------------------------------------------------------------ *)
(* Network faults *)

let test_partition_heals () =
  let cluster = make ~num_clients:2 () in
  Cluster.start_clients cluster ~requests_per_client:20 ~make_op:put;
  (* Cut one backup off for a while. *)
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 100) (fun () ->
      Network.set_partition cluster.Cluster.network ~groups:(Some [| 0; 0; 0; 1; 0; 0 |]));
  Engine.schedule cluster.Cluster.engine ~at:(Engine.sec 5) (fun () ->
      Network.set_partition cluster.Cluster.network ~groups:None);
  Cluster.run_for cluster (Engine.sec 60);
  check_int "all done" 40 (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster)

let test_random_drops () =
  let cluster =
    Cluster.create ~config:(Config.sbft ~f:1 ~c:0) ~num_clients:2
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Cluster.kv_service ()
  in
  Network.set_drop_prob cluster.Cluster.network 0.02;
  Cluster.start_clients cluster ~requests_per_client:10 ~make_op:put;
  Cluster.run_for cluster (Engine.sec 180);
  check "agreement under drops" true (Cluster.agreement_ok cluster);
  check_int "all done despite drops" 20 (Cluster.total_completed cluster)

(* ------------------------------------------------------------------ *)
(* State transfer *)

let test_state_transfer_catches_up () =
  let config = { (Config.sbft ~f:1 ~c:0) with Config.win = 16 } in
  let cluster = make ~config ~num_clients:4 () in
  Cluster.crash_replicas cluster [ 3 ];
  Cluster.start_clients cluster ~requests_per_client:30 ~make_op:put;
  Cluster.run_for cluster (Engine.sec 30);
  Engine.recover cluster.Cluster.engine 3;
  (* Fresh traffic after recovery carries the execution proofs that let
     the lagging replica notice its gap and fetch a checkpoint. *)
  Cluster.start_clients cluster ~requests_per_client:30 ~make_op:put;
  Cluster.run_for cluster (Engine.sec 120);
  check_int "all done" 240 (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  let r3 = cluster.Cluster.replicas.(3) in
  let r1 = cluster.Cluster.replicas.(1) in
  check "replica 3 caught up" true
    (Replica.last_executed r3 > Replica.last_executed r1 - 20);
  check "digest matches after catch-up" true
    (Replica.last_executed r3 <> Replica.last_executed r1
    || String.equal (Replica.state_digest r3) (Replica.state_digest r1))

let test_forged_state_resp_rejected () =
  (* A Byzantine replica sends an unsolicited blocks-only State_resp
     whose block carries operations that were never agreed on, under a
     forged commit certificate.  The victim has no state transfer
     outstanding, so the message must be dropped wholesale: adopting it
     would execute uncertified operations — a safety violation. *)
  let cluster = drive (make ()) in
  assert_all_done cluster;
  let victim = cluster.Cluster.replicas.(1) in
  let before = Replica.last_executed victim in
  let digest_before = Replica.state_digest victim in
  let forged_req =
    { Types.client = 999; timestamp = 42; op = put ~client:999 1; signature = "" }
  in
  let msg =
    Types.State_resp
      {
        snapshot = "";
        snap_seq = 0;
        pi = Sbft_crypto.Field.zero;
        digest = "";
        blocks =
          [
            ( before + 1,
              Replica.view victim,
              [ forged_req ],
              Types.Cert_fast (Sbft_crypto.Field.of_int 0xdead) );
          ];
        table = [];
      }
  in
  Engine.dispatch cluster.Cluster.engine ~dst:(Replica.id victim)
    ~at:(Engine.now cluster.Cluster.engine)
    (fun ctx -> Replica.on_message victim ctx ~src:3 msg);
  Cluster.run_for cluster (Engine.sec 5);
  check_int "forged suffix not executed" before (Replica.last_executed victim);
  check "state digest unchanged" true
    (String.equal digest_before (Replica.state_digest victim));
  check "no forged client-table row" true
    (Replica.client_last_timestamp victim ~client:999 = None);
  check "agreement" true (Cluster.agreement_ok cluster)

(* ------------------------------------------------------------------ *)
(* Crash-amnesia: volatile state wiped, durable WAL + ledger survive *)

let test_amnesia_backup_recovery () =
  (* A backup loses its memory mid-run.  The rebuilt replica must replay
     its WAL + ledger, catch up on what it missed, and re-converge. *)
  let cluster = make ~num_clients:4 () in
  Cluster.start_clients cluster ~requests_per_client:30 ~make_op:put;
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 50) (fun () ->
      Cluster.crash_amnesia cluster 2);
  Engine.schedule cluster.Cluster.engine ~at:(Engine.sec 5) (fun () ->
      Cluster.recover_replica cluster 2);
  Cluster.run_for cluster (Engine.sec 90);
  check_int "all done" 120 (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  let r2 = cluster.Cluster.replicas.(2) in
  let r1 = cluster.Cluster.replicas.(1) in
  check "rebuilt replica executed blocks" true (Replica.last_executed r2 > 0);
  check "digest matches at equal heights" true
    (Replica.last_executed r2 <> Replica.last_executed r1
    || String.equal (Replica.state_digest r2) (Replica.state_digest r1));
  check "WAL was written and group-committed" true
    (Sbft_store.Wal.appends (Replica.wal r2) > 0
    && Sbft_store.Wal.syncs (Replica.wal r2) > 0)

let test_amnesia_primary_recovery () =
  (* The primary forgets everything: the cluster view-changes past it,
     and the rebuilt replica rejoins the later view (the stale
     view-change it sends on wake-up is answered with the stored
     new-view evidence). *)
  let cluster = make ~num_clients:4 () in
  Cluster.start_clients cluster ~requests_per_client:30 ~make_op:put;
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 50) (fun () ->
      Cluster.crash_amnesia cluster 0);
  Engine.schedule cluster.Cluster.engine ~at:(Engine.sec 20) (fun () ->
      Cluster.recover_replica cluster 0);
  Cluster.run_for cluster (Engine.sec 120);
  check_int "all done" 120 (Cluster.total_completed cluster);
  check "agreement" true (Cluster.agreement_ok cluster);
  List.iter
    (fun r -> check "view advanced past the amnesiac primary" true (Replica.view r >= 1))
    (alive cluster);
  check "old primary rejoined the later view" true
    (Replica.view cluster.Cluster.replicas.(0) >= 1)

(* ------------------------------------------------------------------ *)
(* Batching, windows, retransmission *)

let test_batching_under_load () =
  let config = { (Config.sbft ~f:1 ~c:0) with Config.max_batch = 8 } in
  let cluster = make ~config ~num_clients:64 () in
  ignore (drive ~reqs:10 cluster);
  check_int "all done" 640 (Cluster.total_completed cluster);
  (* With 64 concurrent clients and at most 8 blocks in flight, blocks
     must carry multiple requests. *)
  let r = cluster.Cluster.replicas.(1) in
  check "batching happened" true (Replica.blocks_executed r * 2 < 640)

let test_client_retransmission_answered () =
  (* Duplicate client requests (same timestamp) are answered from the
     client table, not re-executed. *)
  let cluster = make ~num_clients:1 () in
  ignore (drive ~reqs:5 cluster);
  let before = Replica.blocks_executed cluster.Cluster.replicas.(1) in
  (* Nothing further to execute: resending completed ops creates no new blocks. *)
  Cluster.run_for cluster (Engine.sec 10);
  check_int "no extra blocks" before (Replica.blocks_executed cluster.Cluster.replicas.(1));
  check_int "five ops" 5 (Cluster.total_completed cluster)

let test_checkpoint_gc () =
  let config = { (Config.sbft ~f:1 ~c:0) with Config.win = 8 } in
  let cluster = make ~config ~num_clients:4 () in
  ignore (drive ~reqs:50 cluster);
  check_int "all done" 200 (Cluster.total_completed cluster);
  List.iter
    (fun r -> check "stable advanced" true (Replica.last_stable r > 0))
    (alive cluster)

(* ------------------------------------------------------------------ *)
(* Read-only queries *)

let test_query_path () =
  let cluster = make ~num_clients:1 () in
  ignore (drive ~reqs:5 cluster);
  let client = cluster.Cluster.clients.(0) in
  let result = ref `Pending in
  Engine.dispatch cluster.Cluster.engine ~dst:(Client.id client)
    ~at:(Engine.now cluster.Cluster.engine) (fun ctx ->
      Client.query client ctx ~key:"k0-3" ~callback:(fun r -> result := `Got r));
  Cluster.run_for cluster (Engine.sec 30);
  (match !result with
  | `Got (Some (value, seq)) ->
      check "queried value" true (value = "3");
      check "certified height" true (seq > 0)
  | `Got None -> Alcotest.fail "query failed"
  | `Pending -> Alcotest.fail "query never completed");
  (* Absent key: a full unsuccessful cycle yields None. *)
  let result2 = ref `Pending in
  Engine.dispatch cluster.Cluster.engine ~dst:(Client.id client)
    ~at:(Engine.now cluster.Cluster.engine) (fun ctx ->
      Client.query client ctx ~key:"no-such-key" ~callback:(fun r -> result2 := `Got r));
  Cluster.run_for cluster (Engine.sec 30);
  check "absent key" true (!result2 = `Got None)

let test_query_survives_replica_crash () =
  let cluster = make ~num_clients:1 () in
  ignore (drive ~reqs:5 cluster);
  (* Crash a replica; queries retry the others. *)
  Cluster.crash_replicas cluster [ 2 ];
  let client = cluster.Cluster.clients.(0) in
  let got = ref None in
  Engine.dispatch cluster.Cluster.engine ~dst:(Client.id client)
    ~at:(Engine.now cluster.Cluster.engine) (fun ctx ->
      Client.query client ctx ~key:"k0-1" ~callback:(fun r -> got := r));
  Cluster.run_for cluster (Engine.sec 30);
  match !got with
  | Some (value, _) -> check "value despite crash" true (value = "1")
  | None -> Alcotest.fail "query did not survive crash"

(* ------------------------------------------------------------------ *)
(* Determinism and WAN topologies *)

let test_determinism () =
  let run () =
    let cluster = make ~seed:42L ~topology:(fun ~num_nodes -> Topology.world ~num_nodes) () in
    ignore (drive ~reqs:10 cluster);
    ( Cluster.total_completed cluster,
      Stats.Latency.mean_ms cluster.Cluster.latency,
      Replica.state_digest cluster.Cluster.replicas.(0) )
  in
  let a = run () and b = run () in
  check "identical outcomes" true (a = b)

let test_world_scale_latency () =
  let cluster = make ~topology:(fun ~num_nodes -> Topology.world ~num_nodes) () in
  ignore (drive ~reqs:5 cluster);
  assert_all_done ~reqs:5 cluster;
  (* World-scale round trips: commits cannot be faster than ~100 ms. *)
  check "latency reflects WAN" true (Stats.Latency.median_ms cluster.Cluster.latency > 50.0)

let test_linearity () =
  (* Paper §II property (3): committing a block costs a linear number of
     constant-size messages.  Messages per block must grow ~n, not ~n². *)
  let messages_per_block f =
    let cluster = make ~config:(Config.sbft ~f ~c:0) ~num_clients:1 () in
    ignore (drive ~reqs:20 cluster);
    check_int "done" 20 (Cluster.total_completed cluster);
    let blocks = Replica.last_executed cluster.Cluster.replicas.(1) in
    float_of_int (Network.messages_sent cluster.Cluster.network) /. float_of_int blocks
  in
  let m4 = messages_per_block 1 (* n=4 *) in
  let m13 = messages_per_block 4 (* n=13 *) in
  let growth = m13 /. m4 in
  let n_ratio = 13.0 /. 4.0 in
  check "at least linear" true (growth > 0.8 *. n_ratio);
  (* Far below the quadratic ratio (13/4)^2 ≈ 10.6. *)
  check "sub-quadratic" true (growth < 0.6 *. (n_ratio *. n_ratio))

let test_fig1_message_flow () =
  (* The schematic of Figure 1: request, pre-prepare, sign-share,
     full-commit-proof, sign-state, full-execute-proof, execute-ack. *)
  let cluster =
    Cluster.create ~trace:true ~config:(Config.sbft ~f:1 ~c:0) ~num_clients:1
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Cluster.kv_service ()
  in
  Cluster.start_clients cluster ~requests_per_client:1 ~make_op:put;
  Cluster.run_for cluster (Engine.sec 5);
  check_int "completed" 1 (Cluster.total_completed cluster);
  let kinds =
    List.map (fun r -> r.Trace.kind) (Trace.records cluster.Cluster.trace)
  in
  List.iter
    (fun k -> check (k ^ " present") true (List.mem k kinds))
    [ "send:pre-prepare"; "send:full-commit-proof"; "commit"; "send:full-execute-proof" ];
  check "no slow-path messages" true (not (List.mem "send:prepare" kinds))

let () =
  Alcotest.run "sbft_protocol"
    [
      ( "happy-path",
        [
          Alcotest.test_case "fast path" `Quick test_fast_path_happy;
          Alcotest.test_case "linear-pbft" `Quick test_linear_pbft_happy;
          Alcotest.test_case "linear-pbft + fast" `Quick test_linear_pbft_fast_happy;
          Alcotest.test_case "sbft c=1" `Quick test_sbft_c8_style;
          Alcotest.test_case "f=2" `Quick test_f2;
        ] );
      ( "crash-faults",
        [
          Alcotest.test_case "backup crash -> slow path" `Quick test_crash_backup_forces_slow_path;
          Alcotest.test_case "crash within c -> fast path" `Quick test_crash_within_c_keeps_fast_path;
          Alcotest.test_case "crash beyond c -> fallback" `Quick test_crash_beyond_c_falls_back;
          Alcotest.test_case "primary crash -> view change" `Quick test_crash_primary_view_change;
          Alcotest.test_case "primary crash mid-run" `Quick test_primary_crash_mid_run;
          Alcotest.test_case "cascaded primary crashes" `Quick test_cascaded_primary_crashes;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "equivocating primary" `Quick test_equivocating_primary_safety;
          Alcotest.test_case "corrupt shares" `Quick test_corrupt_shares_robustness;
          Alcotest.test_case "wrong exec digest" `Quick test_wrong_exec_digest;
          Alcotest.test_case "silent replica" `Quick test_silent_replica;
          Alcotest.test_case "stale view-change info" `Quick test_stale_view_change_messages;
        ] );
      ( "network-faults",
        [
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "random drops" `Quick test_random_drops;
        ] );
      ( "queries",
        [
          Alcotest.test_case "single-replica read" `Quick test_query_path;
          Alcotest.test_case "retries across crash" `Quick test_query_survives_replica_crash;
        ] );
      ( "state-transfer",
        [
          Alcotest.test_case "lagging replica catches up" `Quick
            test_state_transfer_catches_up;
          Alcotest.test_case "forged blocks-only response rejected" `Quick
            test_forged_state_resp_rejected;
        ] );
      ( "crash-amnesia",
        [
          Alcotest.test_case "backup recovers from WAL" `Quick test_amnesia_backup_recovery;
          Alcotest.test_case "amnesiac primary rejoins" `Quick test_amnesia_primary_recovery;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "batching" `Quick test_batching_under_load;
          Alcotest.test_case "retransmission" `Quick test_client_retransmission_answered;
          Alcotest.test_case "checkpoint gc" `Quick test_checkpoint_gc;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "world-scale latency" `Quick test_world_scale_latency;
          Alcotest.test_case "figure-1 flow" `Quick test_fig1_message_flow;
          Alcotest.test_case "linearity" `Quick test_linearity;
        ] );
    ]
