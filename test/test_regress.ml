(* Tests for the benchmark regression harness: the Json encoder/parser,
   report round-tripping, the tolerance-band comparator, and the
   determinism of the measured grid (which is what licenses the tight
   bands in CI). *)

open Sbft_harness

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Report.Json *)

let test_json_roundtrip () =
  let open Report.Json in
  let v =
    Obj
      [
        ("schema", Str "sbft-bench-v1");
        ("ok", Bool true);
        ("nothing", Null);
        ("count", Num 42.);
        ("rate", Num 123.456789);
        ("tiny", Num 1.5e-9);
        ("escapes", Str "line\nbreak \"quoted\" back\\slash");
        ("items", Arr [ Num 1.; Str "two"; Bool false; Arr []; Obj [] ]);
      ]
  in
  match parse (to_string v) with
  | Error e -> Alcotest.fail ("round-trip parse failed: " ^ e)
  | Ok v' ->
      check "round-trip preserves the document" true (v = v');
      (* Accessors *)
      check "member hit" true (member "ok" v' = Some (Bool true));
      check "member miss" true (member "absent" v' = None);
      check "to_float" true
        (match member "rate" v' with
        | Some n -> to_float n = Some 123.456789
        | None -> false);
      check "to_str" true
        (match member "schema" v' with
        | Some s -> to_str s = Some "sbft-bench-v1"
        | None -> false)

let test_json_parse_edges () =
  let open Report.Json in
  let ok s v = check ("parse " ^ s) true (parse s = Ok v) in
  ok "null" Null;
  ok "true" (Bool true);
  ok "-0.5e2" (Num (-50.));
  ok "[]" (Arr []);
  ok "{}" (Obj []);
  ok "\"a\\u0041b\"" (Str "aAb");
  ok " { \"a\" : [ 1 , 2 ] } " (Obj [ ("a", Arr [ Num 1.; Num 2. ]) ]);
  let bad s = check ("reject " ^ s) true (match parse s with Error _ -> true | Ok _ -> false) in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "nul";
  bad "\"unterminated";
  bad "{} trailing"

(* ------------------------------------------------------------------ *)
(* Regress report serialization *)

let sample_entry =
  {
    Regress.name = "sbft-fast-optimistic";
    protocol = "sbft";
    n = 6;
    f = 1;
    c = 1;
    clients = 4;
    throughput_ops = 29227.4;
    p50_ms = 1.25;
    p99_ms = 2.5;
    fast_fraction = 1.0;
    crypto_us = [ ("combine", 1200.5); ("combined_verify", 900.) ];
    wall_ms = 850.;
    events = 120_000;
    events_per_sec = 141_000.;
    minor_words = 9.5e7;
  }

let sample_report entries = { Regress.schema = Regress.schema_id; entries }

let test_report_roundtrip () =
  let r = sample_report [ sample_entry; { sample_entry with Regress.name = "pbft"; crypto_us = [] } ] in
  match Regress.of_json (Regress.to_json r) with
  | Error e -> Alcotest.fail ("report round-trip failed: " ^ e)
  | Ok r' ->
      check "report survives JSON round-trip" true (r = r');
      (* File round-trip through write/load. *)
      let path = Filename.temp_file "sbft_regress" ".json" in
      Regress.write ~path r;
      (match Regress.load ~path with
      | Ok r'' -> check "file round-trip" true (r = r'')
      | Error e -> Alcotest.fail e);
      Sys.remove path

let test_report_schema_check () =
  let r = sample_report [ sample_entry ] in
  let json = Regress.to_json r in
  let wrong = Str.replace_first (Str.regexp_string Regress.schema_id) "other-v9" json in
  check "foreign schema rejected" true
    (match Regress.of_json wrong with Error _ -> true | Ok _ -> false);
  check "non-JSON rejected" true
    (match Regress.of_json "not json" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Comparator *)

let test_compare_within_tolerance () =
  let baseline = sample_report [ sample_entry ] in
  (* 5% throughput drift and sub-floor latency drift stay inside the
     default bands. *)
  let drifted =
    {
      sample_entry with
      Regress.throughput_ops = sample_entry.Regress.throughput_ops *. 1.05;
      p50_ms = sample_entry.Regress.p50_ms +. 0.1;
      crypto_us = [ ("combine", 1210.); ("combined_verify", 905.) ];
    }
  in
  check "identical reports pass" true
    (Regress.compare_reports ~baseline ~current:baseline () = []);
  check "in-band drift passes" true
    (Regress.compare_reports ~baseline ~current:(sample_report [ drifted ]) () = [])

let test_compare_trips_on_regression () =
  let baseline = sample_report [ sample_entry ] in
  let trips label current =
    let v = Regress.compare_reports ~baseline ~current:(sample_report [ current ]) () in
    check (label ^ " trips the gate") true (v <> []);
    check (label ^ " names the scenario") true
      (List.exists
         (fun s ->
           (* every violation message carries the grid row id *)
           try ignore (Str.search_forward (Str.regexp_string "sbft-fast-optimistic") s 0); true
           with Not_found -> false)
         v)
  in
  trips "throughput regression"
    { sample_entry with Regress.throughput_ops = sample_entry.Regress.throughput_ops *. 0.8 };
  trips "throughput improvement (baseline stale)"
    { sample_entry with Regress.throughput_ops = sample_entry.Regress.throughput_ops *. 1.2 };
  trips "latency regression" { sample_entry with Regress.p99_ms = 10. };
  trips "fast-path fraction drop" { sample_entry with Regress.fast_fraction = 0.5 };
  trips "crypto blow-up"
    { sample_entry with Regress.crypto_us = [ ("combine", 5000.); ("combined_verify", 900.) ] };
  trips "crypto label appears"
    {
      sample_entry with
      Regress.crypto_us = sample_entry.Regress.crypto_us @ [ ("share_batch_verify", 9000.) ];
    };
  trips "event-count blow-up" { sample_entry with Regress.events = 200_000 };
  trips "allocation blow-up" { sample_entry with Regress.minor_words = 2e8 }

let test_wall_advisory () =
  let baseline = sample_report [ sample_entry ] in
  let slow = sample_report [ { sample_entry with Regress.wall_ms = 5000. } ] in
  (* Wall clock never trips the PR gate... *)
  check "wall drift passes the gate" true
    (Regress.compare_reports ~baseline ~current:slow () = []);
  (* ...but out-of-band drift is reported as an advisory... *)
  check "wall drift is advisory" true
    (Regress.wall_advisories ~baseline ~current:slow () <> []);
  (* ...and in-band drift is silent. *)
  check "in-band wall silent" true
    (Regress.wall_advisories ~baseline ~current:baseline () = [])

let test_compare_shape_changes () =
  let baseline = sample_report [ sample_entry ] in
  check "missing scenario trips" true
    (Regress.compare_reports ~baseline ~current:(sample_report []) () <> []);
  check "extra scenario trips" true
    (Regress.compare_reports ~baseline
       ~current:(sample_report [ sample_entry; { sample_entry with Regress.name = "new-row" } ])
       ()
    <> []);
  check "config shape change trips" true
    (Regress.compare_reports ~baseline
       ~current:(sample_report [ { sample_entry with Regress.clients = 8 } ])
       ()
    <> [])

(* ------------------------------------------------------------------ *)
(* The measured grid itself *)

let test_measure_deterministic () =
  (* Two runs of the quick grid are bit-identical: virtual time only.
     This is the property that justifies tight tolerance bands in CI. *)
  let r1 = Regress.measure `Quick in
  let r2 = Regress.measure `Quick in
  (* Wall clock / events-per-second (and allocation, which varies as
     process-global caches warm) are host-side by nature; everything
     else must be bit-identical. *)
  check_str "identical JSON across runs"
    (Regress.to_json (Regress.strip_host r1))
    (Regress.to_json (Regress.strip_host r2));
  check_str "schema id" Regress.schema_id r1.Regress.schema;
  check_int "grid size" 7 (List.length r1.Regress.entries);
  (* The headline comparison rows exist and optimistic combining wins. *)
  (match Regress.optimistic_speedup r1 with
  | Some s -> check "optimistic combining is faster" true (s > 1.0)
  | None -> Alcotest.fail "speedup rows missing from grid");
  (* Durability costs something, but not everything: disabling the WAL
     must speed the same scenario up, within reason. *)
  (match Regress.durability_overhead r1 with
  | Some pct ->
      check "wal-off is faster" true (pct > 0.);
      check "durability overhead sane (< 50%)" true (pct < 50.)
  | None -> Alcotest.fail "durability rows missing from grid");
  (* Every row did useful work and carries a crypto breakdown. *)
  List.iter
    (fun e ->
      check (e.Regress.name ^ " throughput positive") true (e.Regress.throughput_ops > 0.);
      check (e.Regress.name ^ " latency ordered") true (e.Regress.p99_ms >= e.Regress.p50_ms);
      check (e.Regress.name ^ " has crypto tally") true (e.Regress.crypto_us <> []);
      check (e.Regress.name ^ " executed events") true (e.Regress.events > 0);
      check (e.Regress.name ^ " allocated") true (e.Regress.minor_words > 0.))
    r1.Regress.entries;
  (* A fresh measurement of the same grid passes its own gate. *)
  check "self-comparison passes" true
    (Regress.compare_reports ~baseline:r1 ~current:r2 () = [])

let () =
  Alcotest.run "sbft_regress"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse edges" `Quick test_json_parse_edges;
        ] );
      ( "report",
        [
          Alcotest.test_case "roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "schema check" `Quick test_report_schema_check;
        ] );
      ( "comparator",
        [
          Alcotest.test_case "within tolerance" `Quick test_compare_within_tolerance;
          Alcotest.test_case "trips on regression" `Quick test_compare_trips_on_regression;
          Alcotest.test_case "wall advisory" `Quick test_wall_advisory;
          Alcotest.test_case "shape changes" `Quick test_compare_shape_changes;
        ] );
      ( "measure",
        [ Alcotest.test_case "deterministic grid" `Slow test_measure_deterministic ] );
    ]
