(* R5 positive: a lib/ module without a .mli (checked by the runner). *)
let answer = 42
