(* R11 positive (b): an unguarded send of an amplifying message. *)
let on_probe t ctx ~replica =
  ignore ctx;
  send t ctx ~dst:replica (Types.State_resp { snap = t.snap })
