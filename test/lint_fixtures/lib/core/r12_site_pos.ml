(* R12 positive (comparison sites): an unresolved threshold form, an
   undeclared hand adjustment, a stale annotation, and a mismatched
   annotation. *)
let on_votes t = if Hashtbl.length t.votes >= my_special_quorum t then accept t

let on_shares t config =
  if List.length t.shares >= Config.tau_threshold config - 1 then accept t

let on_acks t config =
  if (List.length t.acks >= Config.sigma_threshold config) [@quorum.adjust 1] then
    accept t

let on_marks t config =
  if (List.length t.marks >= Config.tau_threshold config - 2) [@quorum.adjust 1]
  then accept t
