(* R10 positive: a priced threshold verification with no covering
   Engine.charge, silently flattering the benchmark numbers. *)
let on_proof t ctx ~seq ~proof =
  ignore ctx;
  if Threshold.verify t.key ~msg:seq proof then accept t ~seq
