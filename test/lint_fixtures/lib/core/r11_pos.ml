(* R11 positive (a): a send fanned out over a peer-supplied collection
   with no rate-limit guard. *)
let on_sync t ctx ~peers =
  List.iter (fun p -> send t ctx ~dst:p (Types.State_resp { snap = t.snap })) peers
