(* R9 negative (mutation twin of r09_pos): the matching record type is
   logged and synced, so the send keeps its promise across a crash. *)
let on_prepare t ctx ~seq ~view =
  wal_log t ctx (Wal.Accepted_prepare { seq; view; tau = "t" });
  wal_sync t ctx;
  send t ctx ~dst:0 (Types.Commit { seq; view; share = 0 })
