(* R6 positive: network input written to state without authentication. *)
let on_gossip t ctx payload =
  ignore ctx;
  Hashtbl.replace t.table payload ()
