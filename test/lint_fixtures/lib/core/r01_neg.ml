(* R1 negative: explicit monomorphic equality. *)
let eq a b = Int.equal a b
