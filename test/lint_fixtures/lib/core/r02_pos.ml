(* R2 positive: partial stdlib function. *)
let first l = List.hd l
