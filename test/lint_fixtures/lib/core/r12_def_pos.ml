(* R12 positive (definitional): tau is one vote short of the canonical
   2f+c+1, so the extracted form diverges and the tau intersection
   obligations fail on the admissible grid; the declared mutation
   constructor weakens nothing, so it is a dead fuzzer oracle. *)
type mutation = Unused_weakening
type t = { f : int; c : int; mutation : mutation option }

let n t = t.f + t.f + t.f + t.c + t.c + 1
let sigma_threshold t = t.f + t.f + t.f + t.c + 1
let tau_threshold t = t.f + t.f + t.c
let pi_threshold t = t.f + 1
let quorum_vc t = t.f + t.f + t.c + t.c + 1
let quorum_bft t = t.f + t.f + 1
