(* R12 negative (comparison sites): thresholds resolve through Config
   and through a local alias, and the hand-adjusted comparison declares
   its implicit vote with a matching annotation. *)
let quorum t = Config.quorum_bft (cfg t)
let on_votes t = if Hashtbl.length t.votes >= quorum t then accept t

let on_shares t config =
  if List.length t.shares >= Config.tau_threshold config then accept t

let on_prepares t =
  if (Hashtbl.length t.prepares >= quorum t - 1) [@quorum.adjust 1] then accept t
