(* R15 negative: exhaustive size and kind tables; wildcards stay legal
   in variant matches that are not wire-accounting tables. *)
type msg = Ping of int | Pong of int

let size = function Ping _ -> 8 | Pong _ -> 12
let kind = function Ping _ -> "ping" | Pong _ -> "pong"
let is_ping = function Ping _ -> true | _ -> false
