val answer : int
