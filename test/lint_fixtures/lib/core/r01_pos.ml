(* R1 positive: polymorphic equality on protocol values. *)
let eq a b = a = b
