(* R14 positive: the file uses the runtime sanitizer, but the
   tau-crossing decision in on_commit never runs the matching
   check_quorum. *)
let on_commit t ctx config =
  if List.length t.shares >= Config.tau_threshold config then commit t ctx

let on_execute t =
  Sanitizer.check_quorum t.san Sanitizer.Pi ~count:(List.length t.acks)
