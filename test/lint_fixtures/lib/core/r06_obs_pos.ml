(* R6 positive, obs source: an adversary observation accessor's result
   reaches protocol state.  obs_* values are attacker-visible by
   construction, so protocol behavior must never depend on them. *)
let refresh_frontier t peer =
  let frontier = Replica.obs_frontier peer in
  Hashtbl.replace t.frontiers frontier ()
