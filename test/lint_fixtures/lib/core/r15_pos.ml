(* R15 positive: the wire-size table hides constructors behind a
   wildcard — a newly added message would ship unaccounted. *)
type msg = Ping of int | Pong of int | Bulk of string

let size = function
  | Ping _ -> 8
  | _ -> 16
