(* R4 negative: a multiplication not involving fault parameters. *)
let area w h = w * h
