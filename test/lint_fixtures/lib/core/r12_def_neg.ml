(* R12 negative (definitional): canonical forms throughout; the
   declared mutation weakens sigma below the intersection bound, so it
   is a live (non-vacuous) fuzzer oracle and R12 stays silent. *)
type mutation = Weak_sigma
type t = { f : int; c : int; mutation : mutation option }

let n t = t.f + t.f + t.f + t.c + t.c + 1

let sigma_threshold t =
  match t.mutation with
  | Some Weak_sigma -> t.f + t.f + t.c
  | None -> t.f + t.f + t.f + t.c + 1

let tau_threshold t = t.f + t.f + t.c + 1
let pi_threshold t = t.f + 1
let quorum_vc t = t.f + t.f + t.c + t.c + 1
let quorum_bft t = t.f + t.f + 1
