(* R5 negative: the matching r05_neg.mli exists. *)
let answer = 42
