(* R3 negative: a named exception is fine. *)
let run g = try g () with Not_found -> 0
