(* R3 positive: catch-all exception handler. *)
let run g = try g () with _ -> 0
