(* R4 positive: quorum-literal arithmetic outside config.ml. *)
let quorum f = (3 * f) + 1
