(* R7 negative: randomness threaded through the seeded simulator rng. *)
let pick rng n = Rng.int rng n
