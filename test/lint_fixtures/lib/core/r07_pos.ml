(* R7 positive: ambient randomness outside lib/sim/rng.ml. *)
let pick n = Random.int n
