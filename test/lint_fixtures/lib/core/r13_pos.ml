(* R13 positive: a raw timer arm whose callback tests no assigned
   cancel flag — the tick survives crash/retire as a zombie. *)
let arm_batch t =
  ignore (Engine.set_timer t.env.engine ~node:t.id ~after:5 (fun ctx -> tick t ctx))
