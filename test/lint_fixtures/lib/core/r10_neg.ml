(* R10 negative (mutation twin of r10_pos): the verification is paired
   with a charge of the same cost klass. *)
let on_proof t ctx ~seq ~proof =
  Engine.charge ctx (Cost_model.Tally.note "proof_verify" Cost_model.bls_verify);
  if Threshold.verify t.key ~msg:seq proof then accept t ~seq
