(* R11 negative: the amplifying send is gated on pacing state. *)
let on_probe t ctx ~replica =
  ignore ctx;
  let allow = not (Hashtbl.mem t.served replica) in
  if allow then begin
    Hashtbl.replace t.served replica ();
    send t ctx ~dst:replica (Types.State_resp { snap = t.snap })
  end
