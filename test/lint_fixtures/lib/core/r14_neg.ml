(* R14 negative: every threshold crossing pairs with a check_quorum of
   the matching kind in the same function; the slicing loop compares
   with < and claims no quorum, so it needs no check. *)
let on_commit t ctx config =
  let count = List.length t.shares in
  if count >= Config.tau_threshold config then begin
    Sanitizer.check_quorum t.san Sanitizer.Tau ~count;
    commit t ctx
  end

let prune t config =
  while List.length t.shares < Config.sigma_threshold config do
    drop_one t
  done
