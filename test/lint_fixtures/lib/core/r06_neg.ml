(* R6 negative: the payload is verified before it reaches state. *)
let on_gossip t ctx payload =
  ignore ctx;
  if verify t.key payload then Hashtbl.replace t.table payload ()
