(* R6 negative, obs source: reading the observation surface and keeping
   the result out of protocol state is fine — here it only feeds a
   pure computation returned to the caller. *)
let frontier_gap peer upto =
  let frontier = Replica.obs_frontier peer in
  max 0 (upto - frontier)
