(* R9 positive: Commit promises an Accepted_prepare record, but only a
   View_entered record was logged and synced before the send. *)
let on_prepare t ctx ~seq ~view =
  wal_log t ctx (Wal.View_entered view);
  wal_sync t ctx;
  send t ctx ~dst:0 (Types.Commit { seq; view; share = 0 })
