(* R13 negative: the wrapper's raw arm guards on an assigned retired
   flag, calls through the local wrapper inherit that guard, and a
   direct arm may carry its own assigned cancel flag. *)
let set_replica_timer t ~after f =
  Engine.set_timer t.env.engine ~node:t.id ~after (fun ctx ->
      if not t.retired then f ctx)

let retire t = t.retired <- true
let arm_batch t = ignore (set_replica_timer t ~after:5 (fun ctx -> tick t ctx))

let arm_direct t =
  ignore
    (Engine.set_timer t.env.engine ~node:t.id ~after:9 (fun ctx ->
         if not t.halted then tick t ctx))

let halt t = t.halted <- true
