(* R2 negative: total _opt variant. *)
let first l = List.nth_opt l 0
