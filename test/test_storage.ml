(* Tests for the wire codec and the storage substrate: operation
   encoding, authenticated store digests and proofs, snapshots, and the
   block store. *)

open Sbft_wire
open Sbft_store

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen prop)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_scalars () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 0xAB;
  Codec.Writer.u32 w 0xDEADBEEF;
  Codec.Writer.u64 w 0x1234_5678_9ABC_DEF0;
  Codec.Writer.varint w 300;
  Codec.Writer.str w "hello";
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  check_int "u8" 0xAB (Codec.Reader.u8 r);
  check_int "u32" 0xDEADBEEF (Codec.Reader.u32 r);
  check_int "u64" 0x1234_5678_9ABC_DEF0 (Codec.Reader.u64 r);
  check_int "varint" 300 (Codec.Reader.varint r);
  check_str "str" "hello" (Codec.Reader.str r);
  check "at end" true (Codec.Reader.at_end r)

let test_codec_truncated () =
  let r = Codec.Reader.of_string "\x01" in
  check "truncated raises" true
    (try
       ignore (Codec.Reader.u32 r);
       false
     with Codec.Reader.Truncated -> true)

let test_codec_list () =
  let w = Codec.Writer.create () in
  Codec.Writer.list w (fun x -> Codec.Writer.u32 w x) [ 1; 2; 3 ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.Reader.list r Codec.Reader.u32)

let codec_props =
  [
    qtest "varint roundtrip" QCheck2.Gen.(int_range 0 max_int) (fun v ->
        let w = Codec.Writer.create () in
        Codec.Writer.varint w v;
        let r = Codec.Reader.of_string (Codec.Writer.contents w) in
        Codec.Reader.varint r = v);
    qtest "string roundtrip" QCheck2.Gen.string (fun s ->
        let w = Codec.Writer.create () in
        Codec.Writer.str w s;
        let r = Codec.Reader.of_string (Codec.Writer.contents w) in
        String.equal (Codec.Reader.str r) s);
  ]

(* ------------------------------------------------------------------ *)
(* Kv_op *)

let test_kv_op_roundtrip () =
  let cases =
    [ Kv_op.Put { key = "k"; value = "v" }; Kv_op.Get { key = "q" }; Kv_op.Noop ]
  in
  List.iter
    (fun op ->
      match Kv_op.decode (Kv_op.encode op) with
      | Some op' -> check "roundtrip" true (op = op')
      | None -> Alcotest.fail "decode failed")
    cases;
  check "garbage decode" true (Kv_op.decode "\xFFgarbage" = None);
  check "empty decode" true (Kv_op.decode "" = None)

(* ------------------------------------------------------------------ *)
(* Auth_store *)

let fresh () = Kv_service.create ()

let test_auth_store_execute () =
  let st = fresh () in
  let outs =
    Auth_store.execute_block st ~seq:1
      ~ops:[ Kv_service.put ~key:"a" ~value:"1"; Kv_service.get ~key:"a" ]
  in
  Alcotest.(check (list string)) "outputs" [ "ok"; "1" ] outs;
  check_int "last executed" 1 (Auth_store.last_executed st);
  check "sequential only" true
    (try
       ignore (Auth_store.execute_block st ~seq:3 ~ops:[]);
       false
     with Invalid_argument _ -> true)

let test_auth_store_digest_deterministic () =
  let run () =
    let st = fresh () in
    ignore (Auth_store.execute_block st ~seq:1 ~ops:[ Kv_service.put ~key:"x" ~value:"1" ]);
    ignore (Auth_store.execute_block st ~seq:2 ~ops:[ Kv_service.put ~key:"y" ~value:"2" ]);
    Auth_store.digest st
  in
  check_str "replicas agree" (Sbft_crypto.Sha256.hex (run ()))
    (Sbft_crypto.Sha256.hex (run ()))

let test_auth_store_digest_depends_on_history () =
  let st1 = fresh () and st2 = fresh () in
  ignore (Auth_store.execute_block st1 ~seq:1 ~ops:[ Kv_service.put ~key:"x" ~value:"1" ]);
  ignore (Auth_store.execute_block st2 ~seq:1 ~ops:[ Kv_service.put ~key:"x" ~value:"2" ]);
  check "different ops, different digest" false
    (String.equal (Auth_store.digest st1) (Auth_store.digest st2))

let test_auth_store_op_proof () =
  let st = fresh () in
  let op0 = Kv_service.put ~key:"alice" ~value:"100" in
  let op1 = Kv_service.put ~key:"bob" ~value:"50" in
  let op2 = Kv_service.get ~key:"alice" in
  ignore (Auth_store.execute_block st ~seq:1 ~ops:[ op0; op1; op2 ]);
  let digest = Auth_store.digest st in
  (* Valid proof for each position. *)
  List.iteri
    (fun index (op, value) ->
      match Auth_store.prove_op st ~seq:1 ~index with
      | None -> Alcotest.fail "no proof"
      | Some proof ->
          check
            (Printf.sprintf "op %d verifies" index)
            true
            (Auth_store.verify_op_proof ~digest ~seq:1 ~index ~op ~value ~proof))
    [ (op0, "ok"); (op1, "ok"); (op2, "100") ];
  (* Tampering attempts. *)
  let proof = Option.get (Auth_store.prove_op st ~seq:1 ~index:0) in
  check "wrong value" false
    (Auth_store.verify_op_proof ~digest ~seq:1 ~index:0 ~op:op0 ~value:"999" ~proof);
  check "wrong op" false
    (Auth_store.verify_op_proof ~digest ~seq:1 ~index:0 ~op:op1 ~value:"ok" ~proof);
  check "wrong index" false
    (Auth_store.verify_op_proof ~digest ~seq:1 ~index:1 ~op:op0 ~value:"ok" ~proof);
  check "wrong seq" false
    (Auth_store.verify_op_proof ~digest ~seq:2 ~index:0 ~op:op0 ~value:"ok" ~proof);
  check "wrong digest" false
    (Auth_store.verify_op_proof ~digest:(String.make 32 'x') ~seq:1 ~index:0 ~op:op0
       ~value:"ok" ~proof);
  check "garbage proof" false
    (Auth_store.verify_op_proof ~digest ~seq:1 ~index:0 ~op:op0 ~value:"ok" ~proof:"junk")

let test_auth_store_proof_across_blocks () =
  (* A proof for block 1 must verify against block 1's digest, not the
     digest of later states. *)
  let st = fresh () in
  let op = Kv_service.put ~key:"k" ~value:"v" in
  ignore (Auth_store.execute_block st ~seq:1 ~ops:[ op ]);
  let d1 = Auth_store.digest st in
  ignore (Auth_store.execute_block st ~seq:2 ~ops:[ Kv_service.put ~key:"k2" ~value:"v2" ]);
  let d2 = Auth_store.digest st in
  let proof = Option.get (Auth_store.prove_op st ~seq:1 ~index:0) in
  check "verifies at d1" true
    (Auth_store.verify_op_proof ~digest:d1 ~seq:1 ~index:0 ~op ~value:"ok" ~proof);
  check "rejected at d2" false
    (Auth_store.verify_op_proof ~digest:d2 ~seq:1 ~index:0 ~op ~value:"ok" ~proof);
  check "digest_at retains block 1" true (Auth_store.digest_at st ~seq:1 = Some d1)

let test_auth_store_query_proof () =
  let st = fresh () in
  ignore
    (Auth_store.execute_block st ~seq:1
       ~ops:[ Kv_service.put ~key:"alice" ~value:"100" ]);
  ignore
    (Auth_store.execute_block st ~seq:2 ~ops:[ Kv_service.put ~key:"bob" ~value:"7" ]);
  let digest = Auth_store.digest st in
  (match Auth_store.prove_query st ~key:"alice" with
  | None -> Alcotest.fail "no query proof"
  | Some (value, proof) ->
      check_str "value" "100" value;
      check "query verifies" true
        (Auth_store.verify_query_proof ~digest ~seq:2 ~key:"alice" ~value ~proof);
      check "wrong value fails" false
        (Auth_store.verify_query_proof ~digest ~seq:2 ~key:"alice" ~value:"1" ~proof);
      check "wrong key fails" false
        (Auth_store.verify_query_proof ~digest ~seq:2 ~key:"bob" ~value ~proof));
  check "absent key" true (Auth_store.prove_query st ~key:"nope" = None)

let test_auth_store_outputs_and_gc () =
  let st = fresh () in
  for s = 1 to 5 do
    ignore
      (Auth_store.execute_block st ~seq:s
         ~ops:[ Kv_service.put ~key:(string_of_int s) ~value:"v" ])
  done;
  check "output retained" true (Auth_store.output_at st ~seq:2 ~index:0 = Some "ok");
  check "ops retained" true (Auth_store.ops_at st ~seq:2 <> None);
  Auth_store.gc_below st ~seq:4;
  check "gc dropped old" true (Auth_store.output_at st ~seq:2 ~index:0 = None);
  check "gc kept recent" true (Auth_store.output_at st ~seq:4 ~index:0 = Some "ok");
  check "proof gone after gc" true (Auth_store.prove_op st ~seq:2 ~index:0 = None)

let test_auth_store_snapshot () =
  let st = fresh () in
  for s = 1 to 10 do
    ignore
      (Auth_store.execute_block st ~seq:s
         ~ops:[ Kv_service.put ~key:(Printf.sprintf "k%d" s) ~value:(string_of_int s) ])
  done;
  let snap = Auth_store.snapshot st in
  let d = Auth_store.digest st in
  (match Auth_store.snapshot_digest_info snap with
  | Some (seq, _) -> check_int "snapshot seq" 10 seq
  | None -> Alcotest.fail "bad snapshot header");
  let st2 = fresh () in
  (match Auth_store.load_snapshot st2 snap with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "restored seq" 10 (Auth_store.last_executed st2);
  check_str "digest stable" (Sbft_crypto.Sha256.hex d)
    (Sbft_crypto.Sha256.hex (Auth_store.digest st2));
  (* Restored store continues executing identically. *)
  let o1 = Auth_store.execute_block st ~seq:11 ~ops:[ Kv_service.get ~key:"k3" ] in
  let o2 = Auth_store.execute_block st2 ~seq:11 ~ops:[ Kv_service.get ~key:"k3" ] in
  check "same outputs" true (o1 = o2);
  check_str "same digest after more blocks"
    (Sbft_crypto.Sha256.hex (Auth_store.digest st))
    (Sbft_crypto.Sha256.hex (Auth_store.digest st2));
  check "corrupt snapshot rejected" true
    (match Auth_store.load_snapshot (fresh ()) "BOGUS" with Error _ -> true | Ok () -> false)

let test_auth_store_snapshot_checked () =
  let st = fresh () in
  for s = 1 to 10 do
    ignore
      (Auth_store.execute_block st ~seq:s
         ~ops:[ Kv_service.put ~key:(Printf.sprintf "k%d" s) ~value:(string_of_int s) ])
  done;
  let snap = Auth_store.snapshot st in
  let d = Auth_store.digest st in
  (* Matching expectation: the snapshot installs. *)
  let st2 = fresh () in
  (match Auth_store.load_snapshot_checked st2 snap ~expect:d with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "restored seq" 10 (Auth_store.last_executed st2);
  check_str "digest matches expectation" (Sbft_crypto.Sha256.hex d)
    (Sbft_crypto.Sha256.hex (Auth_store.digest st2));
  (* Wrong expectation: a well-formed snapshot for a *different* digest
     is rejected without mutating the target store. *)
  let st3 = fresh () in
  ignore (Auth_store.execute_block st3 ~seq:1 ~ops:[ Kv_service.put ~key:"own" ~value:"x" ]);
  let d3 = Auth_store.digest st3 in
  (match Auth_store.load_snapshot_checked st3 snap ~expect:"not-the-digest" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "digest mismatch accepted");
  check_int "store untouched: seq" 1 (Auth_store.last_executed st3);
  check_str "store untouched: digest" (Sbft_crypto.Sha256.hex d3)
    (Sbft_crypto.Sha256.hex (Auth_store.digest st3));
  (* Malformed snapshot: rejected before any digest computation, store
     again untouched. *)
  (match Auth_store.load_snapshot_checked st3 "BOGUS" ~expect:d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "malformed snapshot accepted");
  check_int "store untouched after parse failure" 1 (Auth_store.last_executed st3)

let auth_store_props =
  [
    qtest "two replicas stay digest-identical under random workloads"
      QCheck2.Gen.(int_range 0 200)
      (fun seed ->
        let r = Sbft_sim.Rng.create (Int64.of_int (seed * 7)) in
        let a = fresh () and b = fresh () in
        let ok = ref true in
        for s = 1 to 10 do
          let n = 1 + Sbft_sim.Rng.int r 5 in
          let ops =
            List.init n (fun _ ->
                if Sbft_sim.Rng.bool r 0.7 then
                  Kv_service.put
                    ~key:(Printf.sprintf "k%d" (Sbft_sim.Rng.int r 20))
                    ~value:(Printf.sprintf "v%d" (Sbft_sim.Rng.int r 100))
                else Kv_service.get ~key:(Printf.sprintf "k%d" (Sbft_sim.Rng.int r 20)))
          in
          let oa = Auth_store.execute_block a ~seq:s ~ops in
          let ob = Auth_store.execute_block b ~seq:s ~ops in
          if oa <> ob || not (String.equal (Auth_store.digest a) (Auth_store.digest b))
          then ok := false
        done;
        !ok);
  ]

let test_shared_exec_cache () =
  (* Replicas sharing a cache produce identical results and share the
     resulting state structurally; a diverging replica misses the cache
     and computes its own (different) digest. *)
  let cache = Auth_store.new_cache () in
  let a = fresh () and b = fresh () and rogue = fresh () in
  List.iter (fun st -> Auth_store.set_cache st cache) [ a; b; rogue ];
  let ops = [ Kv_service.put ~key:"k" ~value:"v"; Kv_service.get ~key:"k" ] in
  let oa = Auth_store.execute_block a ~seq:1 ~ops in
  let ob = Auth_store.execute_block b ~seq:1 ~ops in
  check "same outputs via cache" true (oa = ob);
  check_str "same digest" (Sbft_crypto.Sha256.hex (Auth_store.digest a))
    (Sbft_crypto.Sha256.hex (Auth_store.digest b));
  (* Proofs still work on the cache-hit replica. *)
  (match Auth_store.prove_op b ~seq:1 ~index:0 with
  | Some proof ->
      check "proof from cached record" true
        (Auth_store.verify_op_proof ~digest:(Auth_store.digest b) ~seq:1 ~index:0
           ~op:(List.hd ops) ~value:"ok" ~proof)
  | None -> Alcotest.fail "no proof");
  (* Divergent execution does not collide in the cache. *)
  let orogue =
    Auth_store.execute_block rogue ~seq:1 ~ops:[ Kv_service.put ~key:"k" ~value:"EVIL" ]
  in
  check "rogue outputs differ" true (orogue <> oa);
  check "rogue digest differs" false
    (String.equal (Auth_store.digest rogue) (Auth_store.digest a));
  (* Continuing from divergent states stays isolated (read-only ops keep
     the states distinct; a put would legitimately re-converge them). *)
  let reads = [ Kv_service.get ~key:"k" ] in
  let ra = Auth_store.execute_block a ~seq:2 ~ops:reads in
  let rr = Auth_store.execute_block rogue ~seq:2 ~ops:reads in
  check "reads see divergent states" true (ra = [ "v" ] && rr = [ "EVIL" ]);
  check "still different" false
    (String.equal (Auth_store.digest rogue) (Auth_store.digest a))

let test_clone_independent () =
  let a = fresh () in
  ignore (Auth_store.execute_block a ~seq:1 ~ops:[ Kv_service.put ~key:"x" ~value:"1" ]);
  let b = Auth_store.clone a in
  check_str "clone digest equal" (Sbft_crypto.Sha256.hex (Auth_store.digest a))
    (Sbft_crypto.Sha256.hex (Auth_store.digest b));
  ignore (Auth_store.execute_block a ~seq:2 ~ops:[ Kv_service.put ~key:"x" ~value:"2" ]);
  check_int "clone unaffected" 1 (Auth_store.last_executed b);
  ignore (Auth_store.execute_block b ~seq:2 ~ops:[ Kv_service.put ~key:"x" ~value:"3" ]);
  check "clones diverge independently" false
    (String.equal (Auth_store.digest a) (Auth_store.digest b))

let test_bootstrap () =
  let a = fresh () and b = fresh () in
  let genesis = [ Kv_service.put ~key:"g" ~value:"1" ] in
  Auth_store.bootstrap a ~ops:genesis;
  Auth_store.bootstrap b ~ops:genesis;
  check_str "bootstrapped digests equal" (Sbft_crypto.Sha256.hex (Auth_store.digest a))
    (Sbft_crypto.Sha256.hex (Auth_store.digest b));
  check_int "no blocks executed" 0 (Auth_store.last_executed a);
  ignore (Auth_store.execute_block a ~seq:1 ~ops:[ Kv_service.get ~key:"g" ]);
  check "bootstrap state visible" true (Auth_store.output_at a ~seq:1 ~index:0 = Some "1");
  check "bootstrap after execution rejected" true
    (try
       Auth_store.bootstrap a ~ops:genesis;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Block_store *)

let bop ?(client = 7) ?(timestamp = 1) op = { Block_store.client; timestamp; op }

let test_block_store () =
  let bs = Block_store.create () in
  check_int "empty highest" 0 (Block_store.highest bs);
  Block_store.add bs { seq = 1; view = 0; ops = [ bop "a" ]; cert = Fast "sig1" };
  Block_store.add bs
    { seq = 3; view = 0; ops = [ bop "b" ]; cert = Slow { tau = "t3"; tau_tau = "tt3" } };
  check_int "highest" 3 (Block_store.highest bs);
  check "mem" true (Block_store.mem bs 1);
  check "not mem" false (Block_store.mem bs 2);
  (* First write wins. *)
  Block_store.add bs { seq = 1; view = 9; ops = [ bop "z" ]; cert = Fast "other" };
  (match Block_store.find bs 1 with
  | Some e ->
      check "idempotent" true
        (match e.ops with [ o ] -> String.equal o.Block_store.op "a" | _ -> false);
      check "client identity persisted" true
        (match e.ops with [ o ] -> o.Block_store.client = 7 && o.Block_store.timestamp = 1 | _ -> false)
  | None -> Alcotest.fail "missing");
  Block_store.prune_below bs 3;
  check "pruned" false (Block_store.mem bs 1);
  check "kept" true (Block_store.mem bs 3);
  let row =
    { Block_store.ce_client = 9; ce_timestamp = 3; ce_value = "v"; ce_seq = 5; ce_index = 0 }
  in
  Block_store.set_checkpoint bs ~seq:5 ~snapshot:(lazy "snapA") ~table:[ row ];
  Block_store.set_checkpoint bs ~seq:4 ~snapshot:(lazy "old") ~table:[];
  (match Block_store.checkpoint bs with
  | Some cp
    when cp.Block_store.cp_seq = 5
         && Lazy.force cp.Block_store.cp_snapshot = "snapA"
         && cp.Block_store.cp_table = [ row ] -> ()
  | _ -> Alcotest.fail "checkpoint regression");
  check "entry size positive" true
    (Block_store.entry_size { seq = 1; view = 0; ops = [ bop "abc" ]; cert = Fast "s" } > 0)

(* ------------------------------------------------------------------ *)
(* Wal *)

let wal_records =
  [
    Wal.View_entered 2;
    Wal.View_change_started 3;
    Wal.Accepted_pre_prepare
      { seq = 4; view = 2; ops = [ (7, 1, "op-a"); (-1, 0, "") ] };
    Wal.Accepted_prepare { seq = 4; view = 2; tau = "tau-bytes" };
    Wal.Commit_cert { seq = 4; view = 2; fast = false };
    Wal.Stable_checkpoint { seq = 8; digest = "digest"; pi = "pi-bytes" };
    Wal.Client_row { client = 7; timestamp = 1; value = "v"; seq = 4; index = 0 };
  ]

let test_wal_roundtrip () =
  let w = Wal.create () in
  List.iter (fun r -> ignore (Wal.append w r)) wal_records;
  check "dirty before sync" true (Wal.dirty w);
  check "replay sees nothing unsynced" true (Wal.replay w = []);
  check "sync commits" true (Wal.sync w);
  check "clean after sync" false (Wal.dirty w);
  check "second sync is a no-op" false (Wal.sync w);
  check "replay in append order" true (Wal.replay w = wal_records);
  (* Replay is read-only: doing it again gives the same records. *)
  check "replay idempotent" true (Wal.replay w = wal_records);
  check_int "append count" (List.length wal_records) (Wal.appends w);
  check_int "sync count" 1 (Wal.syncs w)

let test_wal_crash_loses_tail () =
  let w = Wal.create () in
  ignore (Wal.append w (Wal.View_entered 1));
  ignore (Wal.sync w);
  ignore (Wal.append w (Wal.Commit_cert { seq = 1; view = 1; fast = true }));
  (* Crash before the group commit: only the synced prefix survives. *)
  Wal.drop_pending w;
  check "unsynced record gone" true (Wal.replay w = [ Wal.View_entered 1 ]);
  check "nothing left pending" false (Wal.dirty w)

let test_wal_corrupt_tail () =
  let w = Wal.create () in
  ignore (Wal.append w (Wal.View_entered 1));
  ignore (Wal.append w (Wal.Commit_cert { seq = 1; view = 1; fast = true }));
  ignore (Wal.sync w);
  (* A torn write garbles the last frame: replay keeps the prefix. *)
  Wal.corrupt_tail w ~bytes:3;
  check "prefix survives torn tail" true (Wal.replay w = [ Wal.View_entered 1 ]);
  (* Garbling everything yields an empty (not crashing) replay. *)
  Wal.corrupt_tail w ~bytes:(Wal.durable_bytes w);
  check "fully corrupt log replays empty" true (Wal.replay w = [])

let test_wal_truncate_below () =
  let w = Wal.create () in
  List.iter
    (fun r -> ignore (Wal.append w r))
    [
      Wal.View_entered 1;
      Wal.Commit_cert { seq = 1; view = 1; fast = true };
      Wal.Stable_checkpoint { seq = 4; digest = "d4"; pi = "p4" };
      Wal.Commit_cert { seq = 5; view = 1; fast = false };
      Wal.Stable_checkpoint { seq = 8; digest = "d8"; pi = "p8" };
      Wal.Commit_cert { seq = 9; view = 1; fast = true };
    ];
  ignore (Wal.sync w);
  Wal.truncate_below w ~seq:8;
  let kept = Wal.replay w in
  check "view records retained" true (List.mem (Wal.View_entered 1) kept);
  check "latest checkpoint retained" true
    (List.mem (Wal.Stable_checkpoint { seq = 8; digest = "d8"; pi = "p8" }) kept);
  (* When the retained checkpoint's seq equals the truncation seq it is
     both re-added up front and kept by the [s >= seq] filter; it must
     still appear exactly once or every later truncation carries the
     duplicate frame forward. *)
  check_int "retained checkpoint appears exactly once" 1
    (List.length
       (List.filter
          (fun r -> r = Wal.Stable_checkpoint { seq = 8; digest = "d8"; pi = "p8" })
          kept));
  check "older checkpoint dropped" false
    (List.mem (Wal.Stable_checkpoint { seq = 4; digest = "d4"; pi = "p4" }) kept);
  check "pre-checkpoint record dropped" false
    (List.mem (Wal.Commit_cert { seq = 5; view = 1; fast = false }) kept);
  check "post-checkpoint record kept" true
    (List.mem (Wal.Commit_cert { seq = 9; view = 1; fast = true }) kept);
  (* Truncation preserves replayability: sync more records after. *)
  ignore (Wal.append w (Wal.Commit_cert { seq = 10; view = 1; fast = true }));
  ignore (Wal.sync w);
  check "appends after truncation replay" true
    (List.mem (Wal.Commit_cert { seq = 10; view = 1; fast = true }) (Wal.replay w))

let test_wal_truncate_amortized () =
  (* Physical compaction is deferred behind a doubling byte watermark:
     per-slot truncation calls must not rewrite the log each time (at
     paper scale that was quadratic), but once the durable buffer
     outgrows the watermark the dead prefix really is dropped. *)
  let w = Wal.create () in
  let big = String.make 512 'x' in
  let grow_past seq0 n =
    for i = 0 to n - 1 do
      ignore
        (Wal.append w
           (Wal.Client_row
              { client = 1; timestamp = i; value = big; seq = seq0 + i; index = 0 }))
    done;
    ignore (Wal.sync w)
  in
  (* ~256 KB of records, all below the horizon we'll truncate to. *)
  grow_past 1 500;
  let before = Wal.durable_bytes w in
  Wal.truncate_below w ~seq:501;
  check "watermark crossing compacts the log" true
    (Wal.durable_bytes w < before / 4);
  (* Replay only ever sees the live suffix, compacted or not. *)
  grow_past 501 3;
  Wal.truncate_below w ~seq:502;
  check "logical truncation filters replay without rewrite" true
    (List.for_all
       (fun r ->
         match r with Wal.Client_row { seq; _ } -> seq >= 502 | _ -> true)
       (Wal.replay w));
  (* Small logs below the watermark never pay for a rewrite, but their
     replay is still truncated. *)
  let small = Wal.create () in
  ignore (Wal.append small (Wal.Commit_cert { seq = 1; view = 1; fast = true }));
  ignore (Wal.append small (Wal.Commit_cert { seq = 2; view = 1; fast = true }));
  ignore (Wal.sync small);
  let sz = Wal.durable_bytes small in
  Wal.truncate_below small ~seq:2;
  check_int "sub-watermark log keeps its bytes" sz (Wal.durable_bytes small);
  check "sub-watermark log still replays truncated" true
    (Wal.replay small = [ Wal.Commit_cert { seq = 2; view = 1; fast = true } ])

let wal_props =
  [
    qtest "random record sequences replay exactly"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let r = Sbft_sim.Rng.create (Int64.of_int ((seed * 31) + 5)) in
        let random_record () =
          match Sbft_sim.Rng.int r 7 with
          | 0 -> Wal.View_entered (Sbft_sim.Rng.int r 100)
          | 1 -> Wal.View_change_started (Sbft_sim.Rng.int r 100)
          | 2 ->
              Wal.Accepted_pre_prepare
                {
                  seq = Sbft_sim.Rng.int r 1000;
                  view = Sbft_sim.Rng.int r 10;
                  ops = [ (Sbft_sim.Rng.int r 20 - 1, Sbft_sim.Rng.int r 50, "x") ];
                }
          | 3 ->
              Wal.Accepted_prepare
                { seq = Sbft_sim.Rng.int r 1000; view = Sbft_sim.Rng.int r 10; tau = "t" }
          | 4 ->
              Wal.Commit_cert
                {
                  seq = Sbft_sim.Rng.int r 1000;
                  view = Sbft_sim.Rng.int r 10;
                  fast = Sbft_sim.Rng.bool r 0.5;
                }
          | 5 ->
              Wal.Stable_checkpoint
                { seq = Sbft_sim.Rng.int r 1000; digest = "d"; pi = "p" }
          | _ ->
              Wal.Client_row
                {
                  client = Sbft_sim.Rng.int r 20;
                  timestamp = Sbft_sim.Rng.int r 50;
                  value = "v";
                  seq = Sbft_sim.Rng.int r 1000;
                  index = Sbft_sim.Rng.int r 4;
                }
        in
        let records = List.init (1 + Sbft_sim.Rng.int r 30) (fun _ -> random_record ()) in
        let w = Wal.create () in
        List.iter (fun rc -> ignore (Wal.append w rc)) records;
        ignore (Wal.sync w);
        Wal.replay w = records);
  ]

let () =
  Alcotest.run "sbft_store"
    [
      ( "codec",
        [
          Alcotest.test_case "scalars" `Quick test_codec_scalars;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "list" `Quick test_codec_list;
        ]
        @ codec_props );
      ("kv_op", [ Alcotest.test_case "roundtrip" `Quick test_kv_op_roundtrip ]);
      ( "auth_store",
        [
          Alcotest.test_case "execute" `Quick test_auth_store_execute;
          Alcotest.test_case "digest deterministic" `Quick test_auth_store_digest_deterministic;
          Alcotest.test_case "digest history" `Quick test_auth_store_digest_depends_on_history;
          Alcotest.test_case "op proofs" `Quick test_auth_store_op_proof;
          Alcotest.test_case "proofs across blocks" `Quick test_auth_store_proof_across_blocks;
          Alcotest.test_case "query proofs" `Quick test_auth_store_query_proof;
          Alcotest.test_case "outputs and gc" `Quick test_auth_store_outputs_and_gc;
          Alcotest.test_case "snapshot" `Quick test_auth_store_snapshot;
          Alcotest.test_case "snapshot checked" `Quick test_auth_store_snapshot_checked;
          Alcotest.test_case "shared exec cache" `Quick test_shared_exec_cache;
          Alcotest.test_case "clone" `Quick test_clone_independent;
          Alcotest.test_case "bootstrap" `Quick test_bootstrap;
        ]
        @ auth_store_props );
      ("block_store", [ Alcotest.test_case "basics" `Quick test_block_store ]);
      ( "wal",
        [
          Alcotest.test_case "append/sync/replay" `Quick test_wal_roundtrip;
          Alcotest.test_case "crash loses unsynced tail" `Quick test_wal_crash_loses_tail;
          Alcotest.test_case "corrupt tail tolerated" `Quick test_wal_corrupt_tail;
          Alcotest.test_case "truncate below checkpoint" `Quick test_wal_truncate_below;
          Alcotest.test_case "truncation amortized" `Quick test_wal_truncate_amortized;
        ]
        @ wal_props );
    ]
