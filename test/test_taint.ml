(* Unit tests for the dataflow lint rules: R6 (authenticate-before-use
   taint) and R7 (determinism), plus allowlist staleness.  Like
   test_lint.ml, sources are synthetic snippets attributed to in-scope
   or out-of-scope paths. *)

module Lint = Sbft_analysis.Lint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lint ~path source = Lint.lint_source ~path source

let has_rule r findings =
  List.exists (fun (f : Lint.finding) -> String.equal f.Lint.rule r) findings

let count_rule r findings =
  List.length
    (List.filter (fun (f : Lint.finding) -> String.equal f.Lint.rule r) findings)

let no_rule r findings =
  check (Printf.sprintf "no %s finding" r) false (has_rule r findings)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

let r6_message findings =
  match
    List.find_opt (fun (f : Lint.finding) -> String.equal f.Lint.rule "R6") findings
  with
  | Some f -> f.Lint.message
  | None -> ""

(* ------------------------------------------------------------------ *)
(* R6: the known-vulnerable fixture — a handler that skips the
   signature check and writes network input straight into state *)

let vulnerable_handler =
  "let on_request t msg =\n\
  \  Hashtbl.replace t.table 0 msg\n"

let clean_r6 src = no_rule "R6" (lint ~path:"lib/core/foo.ml" src)

let test_r6_flags_vulnerable () =
  let fs = lint ~path:"lib/core/foo.ml" vulnerable_handler in
  check "unverified write flagged" true (has_rule "R6" fs);
  (* The finding carries the taint chain back to the handler param. *)
  check "chain names the source" true (contains ~sub:"msg(line 1)" (r6_message fs))

let test_r6_verify_clears () =
  (* Same handler with the verify guard: no finding. *)
  clean_r6
    "let on_request t msg =\n\
    \  if Keys.verify t.keys msg then Hashtbl.replace t.table 0 msg\n"

let test_r6_sanitizer_binding () =
  (* Sanitizer result bound to a witness variable, tested later. *)
  clean_r6
    "let on_request t msg =\n\
    \  let ok = Crypto.verify t.keys msg in\n\
    \  if ok then Hashtbl.replace t.table 0 msg\n";
  (* Combinator form: List.for_all over a verifying predicate. *)
  clean_r6
    "let on_batch t msgs =\n\
    \  if List.for_all (fun m -> Keys.verify_request t.keys m) msgs then\n\
    \    List.iter (fun m -> Hashtbl.replace t.table 0 m) msgs\n"

let test_r6_chain_through_let () =
  (* Taint flows through intermediate bindings, and the chain names
     them. *)
  let fs =
    lint ~path:"lib/core/foo.ml"
      "let on_commit t share =\n\
      \  let cooked = transform share in\n\
      \  t.field <- cooked\n"
  in
  check_int "one R6 finding" 1 (count_rule "R6" fs);
  let msg = r6_message fs in
  check "chain has the derived binding" true (contains ~sub:"cooked(line 2)" msg);
  check "chain reaches the source" true (contains ~sub:"share(line 1)" msg)

let test_r6_scoping () =
  (* Implicit (link-authenticated) parameters are not sources. *)
  clean_r6 "let on_tick t seq = Hashtbl.replace t.table 0 seq\n";
  (* Non-handler functions are not entry points. *)
  clean_r6 "let helper t msg = Hashtbl.replace t.table 0 msg\n";
  (* R6 only runs over the handler layers (lib/core, lib/pbft). *)
  no_rule "R6" (lint ~path:"lib/harness/foo.ml" vulnerable_handler);
  no_rule "R6" (lint ~path:"lib/sim/foo.ml" vulnerable_handler);
  check "pbft in scope" true
    (has_rule "R6" (lint ~path:"lib/pbft/foo.ml" vulnerable_handler))

let test_r6_match_binding () =
  (* Taint follows values destructured out of a tainted scrutinee; a
     when-guard that verifies clears it. *)
  let fs =
    lint ~path:"lib/core/foo.ml"
      "let on_message t msg =\n\
      \  match msg with Some inner -> t.field <- inner | None -> ()\n"
  in
  check "destructured taint flagged" true (has_rule "R6" fs);
  clean_r6
    "let on_message t msg =\n\
    \  match msg with\n\
    \  | Some inner when Keys.verify t.keys inner -> t.field <- inner\n\
    \  | _ -> ()\n"

(* ------------------------------------------------------------------ *)
(* R7: determinism fixtures *)

let test_r7_random () =
  let fs = lint ~path:"lib/core/foo.ml" "let f () = Random.int 5" in
  check "Random in lib/core flagged" true (has_rule "R7" fs);
  let fs = lint ~path:"lib/sim/engine.ml" "let f () = Random.int 5" in
  check "Random in lib/sim flagged" true (has_rule "R7" fs);
  (* The one blessed home for randomness. *)
  no_rule "R7" (lint ~path:"lib/sim/rng.ml" "let f () = Random.int 5")

let test_r7_host_state () =
  let fs = lint ~path:"lib/harness/foo.ml" "let f () = Unix.gettimeofday ()" in
  check "Unix flagged" true (has_rule "R7" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f () = Sys.time ()" in
  check "Sys.time flagged" true (has_rule "R7" fs);
  (* bin/ is free to talk to the host. *)
  no_rule "R7" (lint ~path:"bin/foo.ml" "let f () = Unix.gettimeofday ()");
  no_rule "R7" (lint ~path:"bin/foo.ml" "let f () = Sys.time ()")

let test_r7_physical_eq () =
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = a == b" in
  check "== flagged" true (has_rule "R7" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let equal = ( == )" in
  check "== as value flagged" true (has_rule "R7" fs);
  (* Physical equality is a protocol-scope rule, like R1. *)
  no_rule "R7" (lint ~path:"lib/sim/foo.ml" "let f a b = a == b")

let test_r7_hashtbl_order () =
  let fs = lint ~path:"lib/core/foo.ml" "let f t = Hashtbl.iter print t" in
  check "unordered iter flagged" true (has_rule "R7" fs);
  let fs =
    lint ~path:"lib/harness/foo.ml"
      "let f t = Hashtbl.fold (fun k _ a -> k :: a) t []"
  in
  check "bare fold flagged" true (has_rule "R7" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f t = Hashtbl.to_seq t" in
  check "to_seq flagged" true (has_rule "R7" fs)

let test_r7_sort_exemption () =
  (* All three spellings of fold-into-sort are exempt. *)
  let clean_r7 src = no_rule "R7" (lint ~path:"lib/core/foo.ml" src) in
  clean_r7
    "let f t = Hashtbl.fold (fun k _ a -> k :: a) t [] |> List.sort Int.compare";
  clean_r7
    "let f t = List.sort Int.compare (Hashtbl.fold (fun k _ a -> k :: a) t [])";
  clean_r7
    "let f t = List.sort Int.compare @@ Hashtbl.fold (fun k _ a -> k :: a) t []";
  (* A sort somewhere else does not bless an unrelated fold. *)
  let fs =
    lint ~path:"lib/core/foo.ml"
      "let f t l =\n\
      \  ignore (List.sort Int.compare l);\n\
      \  Hashtbl.fold (fun k _ a -> k :: a) t []\n"
  in
  check "unrelated sort does not exempt" true (has_rule "R7" fs);
  (* det.ml itself is the blessed wrapper. *)
  no_rule "R7" (lint ~path:"lib/sim/det.ml" "let f t = Hashtbl.iter print t")

(* ------------------------------------------------------------------ *)
(* lint.allow staleness regression for the new rules: entries that stop
   matching are reported, entries that still match are not *)

let finding_at ~rule ~file ~line =
  { Lint.rule; severity = Lint.Error; file; line; message = "test" }

let test_allow_stale_entries () =
  let allow =
    Lint.Allow.parse
      "R6 lib/core/replica.ml:100   # vetted flow\n\
       R7 lib/core/gone.ml          # file was fixed since\n"
  in
  let live = finding_at ~rule:"R6" ~file:"lib/core/replica.ml" ~line:100 in
  (* Both entries present, only one matching: exactly one stale line. *)
  let stale = Lint.Allow.unused allow [ live ] in
  check_int "one stale entry" 1 (List.length stale);
  check "stale entry named" true
    (List.exists (contains ~sub:"lib/core/gone.ml") stale);
  (* When the R7 finding reappears, nothing is stale. *)
  let back = finding_at ~rule:"R7" ~file:"lib/core/gone.ml" ~line:3 in
  check_int "no stale entries" 0
    (List.length (Lint.Allow.unused allow [ live; back ]))

let () =
  Alcotest.run "sbft_taint"
    [
      ( "r6",
        [
          Alcotest.test_case "flags vulnerable handler" `Quick test_r6_flags_vulnerable;
          Alcotest.test_case "verify clears" `Quick test_r6_verify_clears;
          Alcotest.test_case "witness + combinator" `Quick test_r6_sanitizer_binding;
          Alcotest.test_case "chain through lets" `Quick test_r6_chain_through_let;
          Alcotest.test_case "scoping" `Quick test_r6_scoping;
          Alcotest.test_case "match bindings" `Quick test_r6_match_binding;
        ] );
      ( "r7",
        [
          Alcotest.test_case "random" `Quick test_r7_random;
          Alcotest.test_case "host state" `Quick test_r7_host_state;
          Alcotest.test_case "physical equality" `Quick test_r7_physical_eq;
          Alcotest.test_case "hashtbl order" `Quick test_r7_hashtbl_order;
          Alcotest.test_case "sort exemption" `Quick test_r7_sort_exemption;
        ] );
      ( "allowlist",
        [ Alcotest.test_case "stale entries" `Quick test_allow_stale_entries ] );
    ]
