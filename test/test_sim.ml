(* Tests for the discrete-event simulation substrate: determinism of the
   PRNG, heap ordering, engine scheduling and CPU accounting, network
   latency/bandwidth/fault models, topology sanity, and stats. *)

open Sbft_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  check "streams differ" true (!same < 3)

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let child = Rng.split parent in
  let c1 = Rng.int64 child in
  (* Re-derive: same construction yields the same child stream. *)
  let parent' = Rng.create 7L in
  let child' = Rng.split parent' in
  Alcotest.(check int64) "split deterministic" c1 (Rng.int64 child')

let test_rng_int_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 4L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 5L in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian r in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check "mean ~ 0" true (Float.abs mean < 0.05);
  check "var ~ 1" true (Float.abs (var -. 1.0) < 0.1)

let test_rng_exponential_mean () =
  let r = Rng.create 6L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check "mean ~ 5" true (Float.abs (mean -. 5.0) < 0.3)

let test_rng_shuffle_permutation () =
  let r = Rng.create 8L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  let r = Rng.create 9L in
  for i = 0 to 999 do
    Heap.push h ~key0:(Rng.int r 100) ~key1:i ()
  done;
  let prev = ref (-1, -1) in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop_min h with
    | None -> continue := false
    | Some (k0, k1, ()) ->
        check "nondecreasing" true (compare (k0, k1) !prev >= 0);
        prev := (k0, k1);
        incr count
  done;
  check_int "all popped" 1000 !count

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~key0:5 ~key1:i i
  done;
  for expected = 0 to 9 do
    match Heap.pop_min h with
    | Some (_, _, v) -> check_int "FIFO among ties" expected v
    | None -> Alcotest.fail "heap empty early"
  done

let test_heap_empty () =
  let h : unit Heap.t = Heap.create () in
  check "empty" true (Heap.is_empty h);
  check "pop none" true (Heap.pop_min h = None);
  check "peek none" true (Heap.peek_key h = None)

(* ------------------------------------------------------------------ *)
(* Wheel — the heap's replacement on the engine hot path; must
   reproduce its pop order exactly *)

let test_wheel_ordering () =
  (* Key spread of several orders of magnitude forces entries through
     multiple wheel levels (and hence cascades) before popping. *)
  let w = Wheel.create () in
  let r = Rng.create 9L in
  for i = 0 to 999 do
    Wheel.push w ~key0:(Rng.int r 100_000_000) ~key1:i ()
  done;
  let prev = ref (-1, -1) in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Wheel.pop_min w with
    | None -> continue := false
    | Some (k0, k1, ()) ->
        check "nondecreasing" true (compare (k0, k1) !prev >= 0);
        prev := (k0, k1);
        incr count
  done;
  check_int "all popped" 1000 !count;
  check "drained" true (Wheel.is_empty w)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  for i = 0 to 9 do
    Wheel.push w ~key0:5 ~key1:i i
  done;
  for expected = 0 to 9 do
    match Wheel.pop_min w with
    | Some (_, _, v) -> check_int "FIFO among ties" expected v
    | None -> Alcotest.fail "wheel empty early"
  done

let test_wheel_empty () =
  let w : unit Wheel.t = Wheel.create () in
  check "empty" true (Wheel.is_empty w);
  check "pop none" true (Wheel.pop_min w = None);
  check "peek none" true (Wheel.peek_key w = None);
  Wheel.push w ~key0:1 ~key1:1 ();
  Wheel.clear w;
  check "cleared" true (Wheel.is_empty w && Wheel.size w = 0)

let test_wheel_interleaved_push_pop () =
  (* Pops interleaved with pushes whose keys sit between already-queued
     ones: entries land in the front heap, current slots, and far
     levels of the hierarchy in one run. *)
  let w = Wheel.create () in
  let seq = ref 0 in
  let push k =
    incr seq;
    Wheel.push w ~key0:k ~key1:!seq (k, !seq)
  in
  List.iter push [ 50; 5_000; 500_000; 50_000_000 ];
  let popped = ref [] in
  for _ = 1 to 2 do
    match Wheel.pop_min w with
    | Some (k0, _, _) ->
        popped := k0 :: !popped;
        (* push between the popped key and the remaining ones *)
        push (k0 + 1)
    | None -> Alcotest.fail "unexpected empty"
  done;
  let rec drain acc =
    match Wheel.pop_min w with
    | Some (k0, _, _) -> drain (k0 :: acc)
    | None -> List.rev acc
  in
  let order = List.rev !popped @ drain [] in
  Alcotest.(check (list int)) "global order respected"
    [ 50; 51; 52; 5_000; 500_000; 50_000_000 ]
    order

let test_wheel_compact () =
  let w = Wheel.create () in
  let r = Rng.create 10L in
  for i = 0 to 499 do
    Wheel.push w ~key0:(Rng.int r 1_000_000) ~key1:i i
  done;
  Wheel.compact w ~dead:(fun v -> v mod 2 = 0);
  check_int "survivor count" 250 (Wheel.size w);
  let prev = ref (-1, -1) in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Wheel.pop_min w with
    | None -> continue := false
    | Some (k0, k1, v) ->
        check "only odd survive" true (v mod 2 = 1);
        check "order preserved" true (compare (k0, k1) !prev >= 0);
        prev := (k0, k1);
        incr n
  done;
  check_int "all survivors popped" 250 !n

(* Property: for ANY random push/pop/compact stream, the wheel pops the
   exact same sequence as the binary heap it replaced.  This is the
   replay-determinism argument in miniature: same (time, seq) total
   order, bit for bit. *)
let wheel_matches_heap_prop =
  let open QCheck in
  (* An op stream: [Some delta] pushes a key [delta] past the largest
     key popped so far (monotone-ish, like event times; occasionally
     huge to span wheel levels), [None] pops from both and compares. *)
  let op_gen =
    Gen.frequency
      [
        (4, Gen.map (fun d -> Some d) (Gen.int_bound 300));
        (1, Gen.map (fun d -> Some (d * 65_537)) (Gen.int_bound 1000));
        (3, Gen.return None);
      ]
  in
  let ops_arb =
    make
      ~print:
        (Print.list (function Some d -> "push+" ^ string_of_int d | None -> "pop"))
      (Gen.list_size (Gen.int_range 1 200) op_gen)
  in
  Test.make ~name:"wheel pops exactly like heap" ~count:200 ops_arb
    (fun ops ->
      let h = Heap.create () and w = Wheel.create () in
      let seq = ref 0 and floor = ref 0 in
      List.for_all
        (fun o ->
          match o with
          | Some delta ->
              let k = !floor + delta in
              incr seq;
              Heap.push h ~key0:k ~key1:!seq !seq;
              Wheel.push w ~key0:k ~key1:!seq !seq;
              true
          | None -> (
              (match Heap.peek_key h, Wheel.peek_key w with
              | Some (k, _), _ -> floor := max !floor k
              | None, _ -> ());
              match (Heap.pop_min h, Wheel.pop_min w) with
              | None, None -> true
              | Some a, Some b -> a = b
              | _ -> false))
        ops
      && begin
           (* Drain the remainder: orders must match to the end. *)
           let rec drain () =
             match (Heap.pop_min h, Wheel.pop_min w) with
             | None, None -> true
             | Some a, Some b -> a = b && drain ()
             | _ -> false
           in
           drain ()
         end)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_schedule_order () =
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let log = ref [] in
  Engine.schedule eng ~at:(Engine.ms 3) (fun () -> log := 3 :: !log);
  Engine.schedule eng ~at:(Engine.ms 1) (fun () -> log := 1 :: !log);
  Engine.schedule eng ~at:(Engine.ms 2) (fun () -> log := 2 :: !log);
  Engine.run_all eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_cpu_serialization () =
  (* Two messages arrive at t=0; each charges 1 ms of CPU: the second
     handler must start at 1 ms. *)
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let starts = ref [] in
  let handler c =
    starts := Engine.ctx_now c :: !starts;
    Engine.charge c (Engine.ms 1)
  in
  Engine.dispatch eng ~dst:0 ~at:0 handler;
  Engine.dispatch eng ~dst:0 ~at:0 handler;
  Engine.run_all eng;
  Alcotest.(check (list int)) "serialized" [ 0; Engine.ms 1 ] (List.rev !starts)

let test_engine_cpu_scale () =
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  Engine.set_cpu_scale eng 0 2.0;
  let done_at = ref 0 in
  Engine.dispatch eng ~dst:0 ~at:0 (fun c ->
      Engine.charge c (Engine.ms 1);
      done_at := Engine.ctx_now c);
  Engine.run_all eng;
  check_int "scaled charge" (Engine.ms 2) !done_at

let test_engine_crash_drops () =
  let eng = Engine.create ~num_nodes:2 ~seed:1L () in
  let hits = ref 0 in
  Engine.crash eng 1;
  Engine.dispatch eng ~dst:1 ~at:(Engine.ms 1) (fun _ -> incr hits);
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 1) (fun _ -> incr hits);
  Engine.run_all eng;
  check_int "only live node runs" 1 !hits

let test_engine_recover () =
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let hits = ref 0 in
  Engine.crash eng 0;
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 1) (fun _ -> incr hits);
  Engine.schedule eng ~at:(Engine.ms 2) (fun () -> Engine.recover eng 0);
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 3) (fun _ -> incr hits);
  Engine.run_all eng;
  check_int "post-recovery delivery" 1 !hits

let test_engine_timer_cancel () =
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let fired = ref false in
  let tm = Engine.set_timer eng ~node:0 ~after:(Engine.ms 5) (fun _ -> fired := true) in
  Engine.schedule eng ~at:(Engine.ms 1) (fun () -> Engine.cancel_timer tm);
  Engine.run_all eng;
  check "cancelled" false !fired

let test_engine_run_until () =
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let hits = ref 0 in
  Engine.schedule eng ~at:(Engine.ms 1) (fun () -> incr hits);
  Engine.schedule eng ~at:(Engine.ms 10) (fun () -> incr hits);
  Engine.run_until eng (Engine.ms 5);
  check_int "only early event" 1 !hits;
  check_int "clock advanced to deadline" (Engine.ms 5) (Engine.now eng);
  Engine.run_all eng;
  check_int "rest runs" 2 !hits

let test_engine_determinism () =
  let run () =
    let eng = Engine.create ~num_nodes:3 ~seed:99L () in
    let topo = Topology.world ~num_nodes:3 in
    let net = Network.create ~topology:topo () in
    let log = ref [] in
    for i = 0 to 20 do
      Network.send net eng ~src:(i mod 3) ~dst:((i + 1) mod 3) ~size:100 ~at:0
        (fun c -> log := (Engine.self c, Engine.ctx_now c) :: !log)
    done;
    Engine.run_all eng;
    !log
  in
  check "identical traces" true (run () = run ())

let test_engine_fifo_under_load () =
  (* Many zero-charge handlers queued behind a long one run in arrival
     order, each exactly once. *)
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let order = ref [] in
  Engine.dispatch eng ~dst:0 ~at:0 (fun c -> Engine.charge c (Engine.ms 10));
  for i = 1 to 50 do
    Engine.dispatch eng ~dst:0 ~at:(Engine.us i) (fun _ -> order := i :: !order)
  done;
  Engine.run_all eng;
  Alcotest.(check (list int)) "FIFO order" (List.init 50 (fun i -> i + 1))
    (List.rev !order)

let test_engine_cancel_storm () =
  (* Retry/backoff patterns set and cancel timers constantly.  Lazy
     purging must keep the queue from accumulating dead entries: after
     50k set+cancel pairs the pending count reflects live events only,
     and the queue itself has been compacted. *)
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let fired = ref 0 in
  for i = 1 to 50_000 do
    let tm =
      Engine.set_timer eng ~node:0 ~after:(Engine.ms (1_000 + i)) (fun _ -> incr fired)
    in
    Engine.cancel_timer tm
  done;
  let keeper = Engine.set_timer eng ~node:0 ~after:(Engine.ms 1) (fun _ -> incr fired) in
  ignore (keeper : Engine.timer);
  check "pending reflects live events only" true (Engine.pending_events eng <= 1 + 64);
  let p = Engine.profile eng in
  check "purge actually ran" true (p.Engine.p_timers_purged > 0);
  Engine.run_all eng;
  check_int "only the live timer fired" 1 !fired;
  (* Skipped-at-pop and purged-by-compaction cancelled timers must
     account for every cancellation. *)
  let p = Engine.profile eng in
  check_int "all cancellations accounted" 50_000
    (p.Engine.p_timers_purged + p.Engine.p_timers_skipped)

let test_engine_fifo_drain_batch () =
  (* All work due at the same instant on one node drains back-to-back
     in seq order through the reused per-node ctx — one drain event,
     not a requeue per item. *)
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let order = ref [] in
  for i = 1 to 100 do
    Engine.dispatch eng ~dst:0 ~at:(Engine.ms 1) (fun c ->
        order := (i, Engine.ctx_now c) :: !order;
        Engine.charge c (Engine.us 10))
  done;
  Engine.run_all eng;
  let entries = List.rev !order in
  Alcotest.(check (list int)) "seq order" (List.init 100 (fun i -> i + 1))
    (List.map fst entries);
  (* Each handler starts when the previous one's charge finished. *)
  List.iteri
    (fun i (_, at) -> check_int "serialized starts" (Engine.ms 1 + Engine.us (10 * i)) at)
    entries

let test_engine_recover_mid_drain () =
  (* A crash arriving while a node's FIFO queue is draining kills the
     queued remainder; recovery restores a clean, working CPU. *)
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let ran = ref [] in
  (* Three handlers queue behind a 10ms charge; the crash at 2ms lands
     while they wait. *)
  Engine.dispatch eng ~dst:0 ~at:0 (fun c ->
      ran := 0 :: !ran;
      Engine.charge c (Engine.ms 10));
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 1) (fun _ -> ran := 1 :: !ran);
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 1) (fun _ -> ran := 2 :: !ran);
  Engine.schedule eng ~at:(Engine.ms 2) (fun () -> Engine.crash eng 0);
  Engine.schedule eng ~at:(Engine.ms 5) (fun () -> Engine.recover eng 0);
  (* Post-recovery work runs immediately: the CPU is free again even
     though the pre-crash charge claimed it until 10ms. *)
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 6) (fun c ->
      ran := 3 :: !ran;
      check_int "recovered CPU free at once" (Engine.ms 6) (Engine.ctx_now c));
  Engine.run_all eng;
  Alcotest.(check (list int)) "queued remainder died with the crash" [ 0; 3 ]
    (List.rev !ran)

let test_engine_crash_clears_queue () =
  (* Work queued on a busy CPU dies with the crash; post-recovery work
     runs. *)
  let eng = Engine.create ~num_nodes:1 ~seed:1L () in
  let hits = ref 0 in
  Engine.dispatch eng ~dst:0 ~at:0 (fun c -> Engine.charge c (Engine.ms 10));
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 1) (fun _ -> incr hits);
  Engine.schedule eng ~at:(Engine.ms 2) (fun () -> Engine.crash eng 0);
  Engine.schedule eng ~at:(Engine.ms 20) (fun () -> Engine.recover eng 0);
  Engine.dispatch eng ~dst:0 ~at:(Engine.ms 30) (fun _ -> hits := !hits + 10);
  Engine.run_all eng;
  Alcotest.(check int) "queued work lost, later work runs" 10 !hits

(* ------------------------------------------------------------------ *)
(* Topology / Network *)

let test_topology_symmetric_base () =
  let topo = Topology.world ~num_nodes:30 in
  for s = 0 to 29 do
    for d = 0 to 29 do
      check_int "symmetric"
        (Topology.base_latency topo ~src:s ~dst:d)
        (Topology.base_latency topo ~src:d ~dst:s)
    done
  done

let test_topology_world_slower_than_continent () =
  let w = Topology.world ~num_nodes:30 and c = Topology.continent ~num_nodes:30 in
  let avg topo =
    let sum = ref 0 and count = ref 0 in
    for s = 0 to 29 do
      for d = 0 to 29 do
        if s <> d then begin
          sum := !sum + Topology.base_latency topo ~src:s ~dst:d;
          incr count
        end
      done
    done;
    float_of_int !sum /. float_of_int !count
  in
  check "world has higher mean latency" true (avg w > avg c)

let test_topology_custom_matrix () =
  let topo =
    Topology.make
      ~region_of:[| 0; 1; 0 |]
      ~one_way_ms:[| [| 0.1; 25.0 |]; [| 25.0; 0.1 |] |]
      ~jitter:0.0
  in
  check_int "regions" 2 (Topology.num_regions topo);
  check_int "same region" (Engine.ms_f 0.1) (Topology.base_latency topo ~src:0 ~dst:2);
  check_int "cross region" (Engine.ms 25) (Topology.base_latency topo ~src:0 ~dst:1);
  (* Zero jitter: sampling equals the base. *)
  let r = Rng.create 1L in
  check_int "no jitter" (Engine.ms 25) (Topology.sample_latency topo r ~src:0 ~dst:1)

let test_topology_lan_fast () =
  let topo = Topology.lan ~num_nodes:4 in
  check "lan < 1ms" true (Topology.base_latency topo ~src:0 ~dst:3 < Engine.ms 1)

let test_network_delivery_latency () =
  let topo = Topology.lan ~num_nodes:2 in
  let eng = Engine.create ~num_nodes:2 ~seed:5L () in
  let net = Network.create ~topology:topo () in
  let arrival = ref (-1) in
  Network.send net eng ~src:0 ~dst:1 ~size:100 ~at:0 (fun c ->
      arrival := Engine.ctx_now c);
  Engine.run_all eng;
  check "arrived" true (!arrival > 0);
  check "latency plausible" true (!arrival < Engine.ms 1)

let test_network_bandwidth_serializes () =
  (* A 10 MB message at 10 Gbit/s takes ~8 ms of NIC time: two messages
     sent back-to-back must arrive roughly 8 ms apart. *)
  let topo = Topology.lan ~num_nodes:2 in
  let eng = Engine.create ~num_nodes:2 ~seed:5L () in
  let net = Network.create ~topology:topo () in
  let arrivals = ref [] in
  for _ = 1 to 2 do
    Network.send net eng ~src:0 ~dst:1 ~size:10_000_000 ~at:0 (fun c ->
        arrivals := Engine.ctx_now c :: !arrivals)
  done;
  Engine.run_all eng;
  match List.rev !arrivals with
  | [ a1; a2 ] ->
      let gap = a2 - a1 in
      check "gap ~ 8ms" true (gap > Engine.ms 6 && gap < Engine.ms 12)
  | _ -> Alcotest.fail "expected two arrivals"

let test_network_partition () =
  let topo = Topology.lan ~num_nodes:4 in
  let eng = Engine.create ~num_nodes:4 ~seed:5L () in
  let net = Network.create ~topology:topo () in
  Network.set_partition net ~groups:(Some [| 0; 0; 1; 1 |]);
  let hits = ref 0 in
  Network.send net eng ~src:0 ~dst:2 ~size:10 ~at:0 (fun _ -> incr hits);
  Network.send net eng ~src:0 ~dst:1 ~size:10 ~at:0 (fun _ -> incr hits);
  Engine.run_all eng;
  check_int "cross-partition dropped" 1 !hits;
  Network.set_partition net ~groups:None;
  Network.send net eng ~src:0 ~dst:2 ~size:10 ~at:(Engine.now eng) (fun _ -> incr hits);
  Engine.run_all eng;
  check_int "healed" 2 !hits

let test_network_link_down () =
  let topo = Topology.lan ~num_nodes:2 in
  let eng = Engine.create ~num_nodes:2 ~seed:5L () in
  let net = Network.create ~topology:topo () in
  Network.set_link net ~src:0 ~dst:1 ~up:false;
  let hits = ref 0 in
  Network.send net eng ~src:0 ~dst:1 ~size:10 ~at:0 (fun _ -> incr hits);
  Network.send net eng ~src:1 ~dst:0 ~size:10 ~at:0 (fun _ -> incr hits);
  Engine.run_all eng;
  check_int "directed link down" 1 !hits

let test_network_extra_delay () =
  let topo = Topology.lan ~num_nodes:2 in
  let eng = Engine.create ~num_nodes:2 ~seed:5L () in
  let net = Network.create ~topology:topo () in
  Network.set_extra_delay net ~src:0 ~dst:1 (Engine.ms 50);
  let arrival = ref 0 in
  Network.send net eng ~src:0 ~dst:1 ~size:10 ~at:0 (fun c ->
      arrival := Engine.ctx_now c);
  Engine.run_all eng;
  check "delayed" true (!arrival >= Engine.ms 50)

let test_network_counters () =
  let topo = Topology.lan ~num_nodes:2 in
  let eng = Engine.create ~num_nodes:2 ~seed:5L () in
  let net = Network.create ~topology:topo () in
  Network.send net eng ~src:0 ~dst:1 ~size:100 ~at:0 (fun _ -> ());
  Network.send net eng ~src:1 ~dst:0 ~size:50 ~at:0 (fun _ -> ());
  Engine.run_all eng;
  Alcotest.(check int) "messages" 2 (Network.messages_sent net);
  Alcotest.(check int) "bytes" 150 (Network.bytes_sent net);
  Network.reset_counters net;
  Alcotest.(check int) "reset" 0 (Network.messages_sent net)

let test_network_drop_prob () =
  let topo = Topology.lan ~num_nodes:2 in
  let eng = Engine.create ~num_nodes:2 ~seed:5L () in
  let net = Network.create ~drop_prob:1.0 ~topology:topo () in
  let hits = ref 0 in
  Network.send net eng ~src:0 ~dst:1 ~size:10 ~at:0 (fun _ -> incr hits);
  Engine.run_all eng;
  check_int "all dropped" 0 !hits;
  check_int "accounted" 1 (Network.messages_dropped net)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_latency () =
  let l = Stats.Latency.create () in
  List.iter (fun x -> Stats.Latency.add l (Engine.ms x)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (float 0.001)) "mean" 3.0 (Stats.Latency.mean_ms l);
  Alcotest.(check (float 0.001)) "median" 3.0 (Stats.Latency.median_ms l);
  Alcotest.(check (float 0.001)) "max" 5.0 (Stats.Latency.max_ms l);
  Alcotest.(check (float 0.001)) "p0" 1.0 (Stats.Latency.percentile_ms l 0.0)

let test_stats_throughput () =
  let t = Stats.Throughput.create () in
  for i = 1 to 10 do
    Stats.Throughput.add t ~at:(Engine.ms (100 * i)) 5
  done;
  check_int "total" 50 (Stats.Throughput.total t);
  (* 5 events in [300ms, 800ms) -> 25 ops in 0.5 s -> 50 ops/s *)
  Alcotest.(check (float 0.01)) "windowed rate" 50.0
    (Stats.Throughput.rate t ~from_:(Engine.ms 300) ~until:(Engine.ms 800))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace () =
  let tr = Trace.create ~enabled:true () in
  Trace.emit tr ~time:0 ~node:1 ~kind:"send" ~detail:"x";
  Trace.emit tr ~time:1 ~node:2 ~kind:"recv" ~detail:"y";
  check_int "records" 2 (List.length (Trace.records tr));
  check_int "find" 1 (List.length (Trace.find_all tr ~kind:"send"));
  Trace.set_enabled tr false;
  Trace.emit tr ~time:2 ~node:3 ~kind:"send" ~detail:"z";
  check_int "disabled drops" 2 (List.length (Trace.records tr))

(* ------------------------------------------------------------------ *)
(* Replay (R8) *)

let replay_records () =
  [
    { Trace.time = 0; node = 0; kind = "send"; detail = "a" };
    { Trace.time = 1; node = 1; kind = "recv"; detail = "a" };
    { Trace.time = 2; node = 0; kind = "send"; detail = "b" };
  ]

let test_replay_identical () =
  match Replay.run_twice ~run:replay_records with
  | Replay.Identical s ->
      check_int "events" 3 s.Replay.events;
      check_int "nodes" 2 (List.length s.Replay.nodes)
  | Replay.Diverged _ -> Alcotest.fail "identical traces reported diverged"

let test_replay_detects_divergence () =
  let calls = ref 0 in
  let run () =
    incr calls;
    if !calls = 1 then replay_records ()
    else
      (* Second run flips one detail: must be caught, with the index. *)
      List.mapi
        (fun i (r : Trace.record) ->
          if i = 1 then { r with Trace.detail = "a'" } else r)
        (replay_records ())
  in
  match Replay.run_twice ~run with
  | Replay.Identical _ -> Alcotest.fail "divergence missed"
  | Replay.Diverged d -> check_int "first differing event" 1 d.Replay.index

let test_replay_detects_truncation () =
  let calls = ref 0 in
  let run () =
    incr calls;
    if !calls = 1 then replay_records ()
    else [ List.hd (replay_records ()) ]
  in
  match Replay.run_twice ~run with
  | Replay.Identical _ -> Alcotest.fail "truncation missed"
  | Replay.Diverged d ->
      check_int "diverges where the short run ends" 1 d.Replay.index;
      check "second run has no event there" true (d.Replay.second = None)

let test_replay_digest_sensitivity () =
  let d1 = Replay.digest_records (replay_records ()) in
  let d2 =
    Replay.digest_records
      (List.map
         (fun (r : Trace.record) -> { r with Trace.node = r.Trace.node + 1 })
         (replay_records ()))
  in
  check "digest depends on content" false (Int64.equal d1 d2);
  Alcotest.(check int64)
    "digest is a pure function" d1
    (Replay.digest_records (replay_records ()))

let () =
  Alcotest.run "sbft_sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "ordering" `Quick test_wheel_ordering;
          Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "empty" `Quick test_wheel_empty;
          Alcotest.test_case "interleaved push/pop" `Quick test_wheel_interleaved_push_pop;
          Alcotest.test_case "compact" `Quick test_wheel_compact;
          QCheck_alcotest.to_alcotest wheel_matches_heap_prop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "schedule order" `Quick test_engine_schedule_order;
          Alcotest.test_case "cpu serialization" `Quick test_engine_cpu_serialization;
          Alcotest.test_case "cpu scale" `Quick test_engine_cpu_scale;
          Alcotest.test_case "crash drops" `Quick test_engine_crash_drops;
          Alcotest.test_case "recover" `Quick test_engine_recover;
          Alcotest.test_case "timer cancel" `Quick test_engine_timer_cancel;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "fifo under load" `Quick test_engine_fifo_under_load;
          Alcotest.test_case "cancel storm" `Quick test_engine_cancel_storm;
          Alcotest.test_case "fifo drain batch" `Quick test_engine_fifo_drain_batch;
          Alcotest.test_case "recover mid-drain" `Quick test_engine_recover_mid_drain;
          Alcotest.test_case "crash clears queue" `Quick test_engine_crash_clears_queue;
        ] );
      ( "topology",
        [
          Alcotest.test_case "symmetric" `Quick test_topology_symmetric_base;
          Alcotest.test_case "world slower" `Quick test_topology_world_slower_than_continent;
          Alcotest.test_case "lan fast" `Quick test_topology_lan_fast;
          Alcotest.test_case "custom matrix" `Quick test_topology_custom_matrix;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery latency" `Quick test_network_delivery_latency;
          Alcotest.test_case "bandwidth" `Quick test_network_bandwidth_serializes;
          Alcotest.test_case "partition" `Quick test_network_partition;
          Alcotest.test_case "link down" `Quick test_network_link_down;
          Alcotest.test_case "extra delay" `Quick test_network_extra_delay;
          Alcotest.test_case "drop prob" `Quick test_network_drop_prob;
          Alcotest.test_case "counters" `Quick test_network_counters;
        ] );
      ( "stats",
        [
          Alcotest.test_case "latency" `Quick test_stats_latency;
          Alcotest.test_case "throughput" `Quick test_stats_throughput;
        ] );
      ("trace", [ Alcotest.test_case "basic" `Quick test_trace ]);
      ( "replay",
        [
          Alcotest.test_case "identical runs" `Quick test_replay_identical;
          Alcotest.test_case "divergence detected" `Quick test_replay_detects_divergence;
          Alcotest.test_case "truncation detected" `Quick test_replay_detects_truncation;
          Alcotest.test_case "digest sensitivity" `Quick test_replay_digest_sensitivity;
        ] );
    ]
